// The latch-free miss path: a fetch that misses reads the disk with no
// shard latch held (per-shard miss-in-flight table + condition variable,
// symmetric to the eviction write-back detachment). These tests pin the
// protocol: a slow page read must not block same-shard hits, concurrent
// fetches of one page must coalesce into a single disk read, a failed
// read must wake waiters, and the whole thing must survive a
// multi-thread stress run under TSan.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/buffer_pool.h"
#include "common/random.h"
#include "storage/page_file.h"

namespace burtree {
namespace {

constexpr size_t kPageSize = 256;

// ---------------------------------------------------------------------------
// The acceptance property: with the latch-free miss path, a slow page
// read no longer blocks same-shard buffer hits (the timed counterpart of
// SlowVictimFlushDoesNotBlockSameShardHits from PR 3).
// ---------------------------------------------------------------------------

TEST(BufferMissPathTest, SlowMissDoesNotBlockSameShardHits) {
  PageFile file(kPageSize);
  constexpr uint64_t kMissMs = 300;
  for (int i = 0; i < 4; ++i) file.Allocate();
  BufferPool pool(&file, /*capacity=*/4, /*shards=*/1);

  // Make page 0 resident (a future hit) with the disk still fast.
  ASSERT_TRUE(pool.FetchPage(0).ok());
  pool.UnpinPage(0, /*dirty=*/false);

  file.set_io_latency_ns(kMissMs * 1000 * 1000);
  file.set_io_latency_model(PageFile::IoLatencyModel::kSleep);

  // Thread A misses on page 1: with the sleep-model disk the read takes
  // kMissMs, during which the shard latch must be free.
  std::atomic<bool> started{false};
  std::atomic<double> miss_ms{0.0};
  std::thread slow([&]() {
    started = true;
    const auto t0 = std::chrono::steady_clock::now();
    auto res = pool.FetchPage(1);
    miss_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    ASSERT_TRUE(res.ok());
    pool.UnpinPage(1, /*dirty=*/false);
  });
  while (!started) std::this_thread::yield();
  // Give the loader time to publish its in-flight marker and enter the
  // latch-free disk sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Hit resident page 0 on the SAME shard while the miss read sleeps.
  const auto t0 = std::chrono::steady_clock::now();
  auto hit = pool.FetchPage(0);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  ASSERT_TRUE(hit.ok());
  pool.UnpinPage(0, false);
  slow.join();
  // Non-vacuousness: the miss really was in flight while the hit above
  // was timed.
  EXPECT_GE(miss_ms.load(), kMissMs * 0.8)
      << "miss read did not run where the test expects";
  // The hit must not have waited out the miss (generous margin: half the
  // simulated read latency).
  EXPECT_LT(ms, kMissMs / 2.0) << "hit blocked behind same-shard miss";

  file.set_io_latency_ns(0);
  ASSERT_TRUE(pool.FlushAll().ok());
}

TEST(BufferMissPathTest, SlowMissDoesNotBlockOtherSameShardMisses) {
  PageFile file(kPageSize);
  constexpr uint64_t kMissMs = 250;
  for (int i = 0; i < 8; ++i) file.Allocate();
  BufferPool pool(&file, /*capacity=*/8, /*shards=*/1);

  file.set_io_latency_ns(kMissMs * 1000 * 1000);
  file.set_io_latency_model(PageFile::IoLatencyModel::kSleep);

  // Four misses on distinct pages of the one shard, concurrently. With
  // the read under the shard latch they would serialize (~4 * kMissMs);
  // latch-free they overlap (~1 * kMissMs).
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (PageId id = 0; id < 4; ++id) {
    threads.emplace_back([&, id]() {
      auto res = pool.FetchPage(id);
      ASSERT_TRUE(res.ok());
      pool.UnpinPage(id, /*dirty=*/false);
    });
  }
  for (auto& t : threads) t.join();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_LT(ms, 2.5 * kMissMs) << "distinct-page misses serialized";
  EXPECT_EQ(file.io_stats().reads(), 4u);

  file.set_io_latency_ns(0);
  ASSERT_TRUE(pool.FlushAll().ok());
}

TEST(BufferMissPathTest, ConcurrentFetchesOfOnePageCoalesceIntoOneRead) {
  PageFile file(kPageSize);
  for (int i = 0; i < 4; ++i) file.Allocate();
  // Stamp page 2 so every fetcher can check it got real bytes.
  {
    uint8_t img[kPageSize] = {};
    img[9] = 0xC3;
    ASSERT_TRUE(file.Write(2, img).ok());
  }
  BufferPool pool(&file, /*capacity=*/4, /*shards=*/1);
  file.set_io_latency_ns(150ull * 1000 * 1000);  // 150 ms reads
  file.set_io_latency_model(PageFile::IoLatencyModel::kSleep);

  const uint64_t reads_before = file.io_stats().reads();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      auto res = pool.FetchPage(2);
      ASSERT_TRUE(res.ok());
      EXPECT_EQ(res.value()->data()[9], 0xC3);
      pool.UnpinPage(2, /*dirty=*/false);
    });
  }
  for (auto& t : threads) t.join();
  // One loader read the page; the other three waited on the in-flight
  // marker and then hit the published frame — no duplicate disk reads.
  EXPECT_EQ(file.io_stats().reads(), reads_before + 1);
  const BufferStats stats = pool.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 3u);

  file.set_io_latency_ns(0);
  ASSERT_TRUE(pool.FlushAll().ok());
}

TEST(BufferMissPathTest, FailedMissWakesWaitersAndPropagatesError) {
  PageFile file(kPageSize);
  file.Allocate();  // page 0 exists; page 7 does not
  BufferPool pool(&file, /*capacity=*/2, /*shards=*/1);

  std::vector<std::thread> threads;
  std::atomic<int> errors{0};
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&]() {
      auto res = pool.FetchPage(7);
      if (!res.ok()) errors.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  // Every fetcher must come back with the error, none may hang on the
  // in-flight marker of a failed read.
  EXPECT_EQ(errors.load(), 3);
  // And the pool still works afterwards.
  auto res = pool.FetchPage(0);
  ASSERT_TRUE(res.ok());
  pool.UnpinPage(0, false);
  ASSERT_TRUE(pool.FlushAll().ok());
}

// ---------------------------------------------------------------------------
// Miss-in-flight stress: many threads, small pool, slow disk — evictions,
// write-backs, coalesced misses and hits all interleaving on two shards.
// Run under TSan by the concurrency CI leg.
// ---------------------------------------------------------------------------

TEST(BufferMissPathTest, MissInFlightStressKeepsFramesConsistent) {
  PageFile file(kPageSize);
  constexpr size_t kPages = 48;
  for (size_t i = 0; i < kPages; ++i) {
    file.Allocate();
    // Per-page fingerprint in byte 0, never overwritten below: a torn or
    // stale miss read would surface as a wrong fingerprint.
    uint8_t img[kPageSize] = {};
    img[0] = static_cast<uint8_t>(0xA0 ^ i);
    ASSERT_TRUE(file.Write(static_cast<PageId>(i), img).ok());
  }
  // Tiny capacity forces constant eviction + refetch traffic.
  BufferPool pool(&file, /*capacity=*/8, /*shards=*/2);
  file.set_io_latency_ns(200 * 1000);  // 200 us sleep-model reads
  file.set_io_latency_model(PageFile::IoLatencyModel::kSleep);

  constexpr int kThreads = 8;
  constexpr uint64_t kOpsPerThread = 400;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(1234 + t);
      for (uint64_t i = 0; i < kOpsPerThread && !failed; ++i) {
        const PageId id = static_cast<PageId>(rng.NextBelow(kPages));
        auto res = pool.FetchPage(id);
        if (!res.ok() ||
            res.value()->data()[0] != (0xA0 ^ static_cast<uint8_t>(id))) {
          failed = true;
          break;
        }
        // Thread-unique byte: dirties the frame without cross-thread
        // data races on the image.
        res.value()->data()[16 + t] = static_cast<uint8_t>(i & 0xFF);
        pool.UnpinPage(id, /*dirty=*/rng.NextBool(0.5));
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed) << "lost pin, failed fetch, or stale miss bytes";

  file.set_io_latency_ns(0);
  // No leaked pins: every page fetches at pin count 1.
  for (PageId id = 0; id < kPages; ++id) {
    auto res = pool.FetchPage(id);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.value()->pin_count(), 1) << "leaked pin on page " << id;
    EXPECT_EQ(res.value()->data()[0], 0xA0 ^ static_cast<uint8_t>(id));
    pool.UnpinPage(id, false);
  }
  EXPECT_LE(pool.resident_frames(), 8u);
  ASSERT_TRUE(pool.FlushAll().ok());
  // Conservation: every counted miss did exactly one disk read — waiters
  // that coalesced onto an in-flight read were counted as hits.
  EXPECT_EQ(file.io_stats().reads(), pool.stats().misses);
}

// ---------------------------------------------------------------------------
// DeletePage vs. a transient no-latch pin. Escalation warming and
// optimistic snapshot copies pin a page while holding no tree latch, so
// a structural delete (leaf condense, root shrink) can catch the page
// momentarily pinned. DeletePage must wait the pin out, not fail the
// whole update with InvalidArgument (the schedule-fuzz GBU/subtree
// flake this reproduces deterministically).
// ---------------------------------------------------------------------------

TEST(BufferMissPathTest, DeletePageWaitsOutTransientPin) {
  PageFile file(kPageSize);
  for (int i = 0; i < 4; ++i) file.Allocate();
  BufferPool pool(&file, /*capacity=*/4, /*shards=*/1);

  auto res = pool.FetchPage(2);  // the "warming" pin
  ASSERT_TRUE(res.ok());

  std::atomic<bool> deleted{false};
  std::thread deleter([&]() {
    ASSERT_TRUE(pool.DeletePage(2).ok());  // must block, then succeed
    deleted = true;
  });
  // The deleter must be parked on the pin, not done and not failed.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(deleted.load());

  pool.UnpinPage(2, /*dirty=*/false);
  deleter.join();
  EXPECT_TRUE(deleted.load());
  // The frame is gone: a re-fetch would read the freed slot, so just
  // check the pool's view directly via a fresh allocation reusing it.
  EXPECT_EQ(file.live_pages(), 3u);
}

}  // namespace
}  // namespace burtree
