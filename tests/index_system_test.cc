#include "update/index_system.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace burtree {
namespace {

TEST(IndexSystemTest, BareSystemHasNoSideStructures) {
  IndexSystemOptions opts;
  IndexSystem sys(opts);
  EXPECT_EQ(sys.oid_index(), nullptr);
  EXPECT_EQ(sys.summary(), nullptr);
  ASSERT_TRUE(sys.Insert(1, Point{0.5, 0.5}).ok());
  EXPECT_EQ(sys.tree().height(), 1u);
}

TEST(IndexSystemTest, FullSystemWiresObservers) {
  IndexSystemOptions opts;
  opts.enable_oid_index = true;
  opts.enable_summary = true;
  IndexSystem sys(opts);
  Rng rng(1);
  for (ObjectId i = 0; i < 2000; ++i) {
    ASSERT_TRUE(
        sys.Insert(i, Point{rng.NextDouble(), rng.NextDouble()}).ok());
  }
  EXPECT_EQ(sys.oid_index()->size(), 2000u);
  EXPECT_EQ(sys.summary()->root(), sys.tree().root());
  EXPECT_TRUE(sys.summary()->SelfCheck());
}

TEST(IndexSystemTest, SummaryBootstrapSeesEmptyRoot) {
  IndexSystemOptions opts;
  opts.enable_summary = true;
  IndexSystem sys(opts);
  // The tree constructor ran before the summary attached; the replay in
  // the IndexSystem constructor must have registered the empty root leaf.
  EXPECT_EQ(sys.summary()->root(), sys.tree().root());
  EXPECT_EQ(sys.summary()->leaf_count(), 1u);
}

TEST(IndexSystemTest, TotalIoCombinesDevices) {
  IndexSystemOptions opts;
  opts.enable_oid_index = true;
  IndexSystem sys(opts);
  ASSERT_TRUE(sys.Insert(1, Point{0.5, 0.5}).ok());
  ASSERT_TRUE(sys.FlushAll().ok());
  const uint64_t before = sys.TotalIo();
  ASSERT_TRUE(sys.oid_index()->Lookup(1).ok());  // unit-cost charge
  EXPECT_EQ(sys.TotalIo(), before + 1);
}

TEST(IndexSystemTest, SetBufferFractionSizesPool) {
  IndexSystemOptions opts;
  IndexSystem sys(opts);
  Rng rng(2);
  for (ObjectId i = 0; i < 5000; ++i) {
    ASSERT_TRUE(
        sys.Insert(i, Point{rng.NextDouble(), rng.NextDouble()}).ok());
  }
  const size_t pages = sys.file().live_pages();
  sys.SetBufferFraction(0.10);
  EXPECT_EQ(sys.buffer().capacity(), static_cast<size_t>(pages * 0.10));
  sys.SetBufferFraction(0.0);
  EXPECT_EQ(sys.buffer().capacity(), 0u);
  EXPECT_LE(sys.buffer().resident_frames(), 0u);
}

TEST(IndexSystemTest, BulkLoadWiresEverything) {
  IndexSystemOptions opts;
  opts.enable_oid_index = true;
  opts.enable_summary = true;
  IndexSystem sys(opts);
  Rng rng(3);
  std::vector<LeafEntry> entries;
  for (ObjectId i = 0; i < 5000; ++i) {
    entries.push_back(LeafEntry{
        Rect::FromPoint(Point{rng.NextDouble(), rng.NextDouble()}), i});
  }
  ASSERT_TRUE(sys.BulkLoad(std::move(entries)).ok());
  EXPECT_EQ(sys.oid_index()->size(), 5000u);
  EXPECT_TRUE(sys.summary()->SelfCheck());
  EXPECT_EQ(sys.summary()->root(), sys.tree().root());
  // Mappings point at real leaves.
  for (ObjectId i = 0; i < 5000; i += 531) {
    auto leaf = sys.oid_index()->Lookup(i);
    ASSERT_TRUE(leaf.ok());
    PageGuard g = PageGuard::Fetch(&sys.buffer(), leaf.value());
    NodeView v(g.data(), 1024, false);
    EXPECT_GE(v.FindOidSlot(i), 0);
  }
  EXPECT_TRUE(sys.tree().Validate(/*check_min_fill=*/false).ok());
}

TEST(IndexSystemTest, MemoryResidentHashNeverWritesDisk) {
  IndexSystemOptions opts;
  opts.enable_oid_index = true;
  IndexSystem sys(opts);
  Rng rng(4);
  for (ObjectId i = 0; i < 3000; ++i) {
    ASSERT_TRUE(
        sys.Insert(i, Point{rng.NextDouble(), rng.NextDouble()}).ok());
  }
  ASSERT_TRUE(sys.FlushAll().ok());
  // All hash maintenance stayed in its buffer; only unit-cost lookup
  // charges appear as reads, and no writes at all.
  EXPECT_EQ(sys.oid_index()->io_stats().writes(), 0u);
}

TEST(IndexSystemTest, PagedHashModeChargesMaintenance) {
  IndexSystemOptions opts;
  opts.enable_oid_index = true;
  opts.hash = HashIndexOptions{};  // fully paged, pass-through
  IndexSystem sys(opts);
  Rng rng(5);
  for (ObjectId i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        sys.Insert(i, Point{rng.NextDouble(), rng.NextDouble()}).ok());
  }
  EXPECT_GT(sys.oid_index()->io_stats().writes(), 0u);
}

}  // namespace
}  // namespace burtree
