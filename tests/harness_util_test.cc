#include <gtest/gtest.h>

#include <sstream>

#include "harness/cli.h"
#include "harness/table_printer.h"

namespace burtree {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "23456"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("23456"), std::string::npos);
  // Header separator line exists.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, Format) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::FmtInt(12345), "12345");
}

TEST(CliArgsTest, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--objects=5000", "--epsilon=0.01",
                        "--dist=gaussian", "--bulk"};
  CliArgs args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("objects", 0), 5000);
  EXPECT_DOUBLE_EQ(args.GetDouble("epsilon", 0.0), 0.01);
  EXPECT_EQ(args.GetString("dist", ""), "gaussian");
  EXPECT_TRUE(args.GetBool("bulk", false));
  EXPECT_FALSE(args.GetBool("missing", false));
}

TEST(CliArgsTest, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--objects", "700", "--name", "x"};
  CliArgs args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("objects", 0), 700);
  EXPECT_EQ(args.GetString("name", ""), "x");
}

TEST(CliArgsTest, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("objects", 42), 42);
  EXPECT_DOUBLE_EQ(args.GetDouble("eps", 1.5), 1.5);
  EXPECT_FALSE(args.Has("objects"));
}

TEST(CliArgsTest, HelpRequestedByEitherSpelling) {
  const char* with_long[] = {"prog", "--help"};
  EXPECT_TRUE(CliArgs(2, const_cast<char**>(with_long)).HelpRequested());
  const char* with_short[] = {"prog", "-h"};
  EXPECT_TRUE(CliArgs(2, const_cast<char**>(with_short)).HelpRequested());
  const char* none[] = {"prog", "--objects=5"};
  EXPECT_FALSE(CliArgs(2, const_cast<char**>(none)).HelpRequested());
}

TEST(CliArgsTest, RecordsQueriedFlagsForUsage) {
  const char* argv[] = {"prog", "--objects=5000"};
  CliArgs args(2, const_cast<char**>(argv));
  (void)args.GetInt("objects", 100);
  (void)args.GetDouble("epsilon", 0.25);
  (void)args.GetString("dist", "uniform");
  (void)args.GetBool("csv", false);
  (void)args.GetInt("objects", 100);  // repeat queries record once
  ASSERT_EQ(args.known_flags().size(), 4u);
  EXPECT_EQ(args.known_flags()[0].first, "objects");
  // Defaults are recorded, not the parsed values.
  EXPECT_EQ(args.known_flags()[0].second, "100");
  EXPECT_EQ(args.known_flags()[3].second, "false");

  std::ostringstream os;
  args.PrintUsage(os);
  const std::string usage = os.str();
  EXPECT_NE(usage.find("--objects (default: 100)"), std::string::npos);
  EXPECT_NE(usage.find("--dist (default: uniform)"), std::string::npos);
}

TEST(CliArgsTest, ExitIfHelpRequestedPrintsUsageAndExitsZero) {
  const char* argv[] = {"prog", "--help"};
  CliArgs args(2, const_cast<char**>(argv));
  (void)args.GetInt("objects", 100);
  // (Help goes to stdout; EXPECT_EXIT's matcher only sees stderr, so just
  // assert the clean exit — PrintUsage content is covered above.)
  EXPECT_EXIT(args.ExitIfHelpRequested("prog", "footer note"),
              ::testing::ExitedWithCode(0), "");
}

TEST(CliArgsTest, ExitIfHelpRequestedIsANoOpWithoutHelp) {
  const char* argv[] = {"prog"};
  CliArgs args(1, const_cast<char**>(argv));
  args.ExitIfHelpRequested("prog");  // must return normally
}

TEST(CliArgsTest, ScaleFactorDefaultsToOne) {
  // (BURTREE_SCALE is not set in the test environment.)
  if (getenv("BURTREE_SCALE") == nullptr) {
    EXPECT_DOUBLE_EQ(CliArgs::ScaleFactor(), 1.0);
    EXPECT_EQ(CliArgs::Scaled(100), 100u);
  }
}

}  // namespace
}  // namespace burtree
