// TreeObserver bus: composite fan-out and structure replay.
#include "rtree/observer.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "oid_index/memory_index.h"
#include "rtree/rtree.h"
#include "summary/summary.h"
#include "storage/page_file.h"

namespace burtree {
namespace {

class CountingObserver : public TreeObserver {
 public:
  int added = 0, removed = 0, created = 0, freed = 0, mbr = 0, linked = 0,
      unlinked = 0, occupancy = 0, root_changed = 0;
  void OnLeafEntryAdded(ObjectId, PageId) override { ++added; }
  void OnLeafEntryRemoved(ObjectId, PageId) override { ++removed; }
  void OnNodeCreated(PageId, Level) override { ++created; }
  void OnNodeFreed(PageId, Level) override { ++freed; }
  void OnNodeMbrChanged(PageId, Level, const Rect&) override { ++mbr; }
  void OnChildLinked(PageId, PageId) override { ++linked; }
  void OnChildUnlinked(PageId, PageId) override { ++unlinked; }
  void OnLeafOccupancyChanged(PageId, uint32_t, uint32_t) override {
    ++occupancy;
  }
  void OnRootChanged(PageId, Level) override { ++root_changed; }
};

TEST(CompositeObserverTest, FansOutToAllChildren) {
  CountingObserver a, b;
  CompositeObserver composite;
  composite.Add(&a);
  composite.Add(&b);
  composite.OnLeafEntryAdded(1, 2);
  composite.OnLeafEntryRemoved(1, 2);
  composite.OnNodeCreated(3, 1);
  composite.OnNodeFreed(3, 1);
  composite.OnNodeMbrChanged(3, 1, Rect(0, 0, 1, 1));
  composite.OnChildLinked(3, 4);
  composite.OnChildUnlinked(3, 4);
  composite.OnLeafOccupancyChanged(4, 5, 10);
  composite.OnRootChanged(3, 1);
  for (CountingObserver* o : {&a, &b}) {
    EXPECT_EQ(o->added, 1);
    EXPECT_EQ(o->removed, 1);
    EXPECT_EQ(o->created, 1);
    EXPECT_EQ(o->freed, 1);
    EXPECT_EQ(o->mbr, 1);
    EXPECT_EQ(o->linked, 1);
    EXPECT_EQ(o->unlinked, 1);
    EXPECT_EQ(o->occupancy, 1);
    EXPECT_EQ(o->root_changed, 1);
  }
}

TEST(ObserverTest, InsertEmitsBalancedEvents) {
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 1024);
  RTree tree(&pool, opts);
  CountingObserver counter;
  tree.set_observer(&counter);
  Rng rng(1);
  for (ObjectId i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree.Insert(i, Rect::FromPoint(
                                   Point{rng.NextDouble(), rng.NextDouble()}))
                    .ok());
  }
  // Every live object was Added at least once; Added - Removed must equal
  // the live count (splits re-home entries with balanced pairs).
  EXPECT_EQ(counter.added - counter.removed, 3000);
  // Node lifetime balance: created - freed = live node count.
  EXPECT_EQ(static_cast<uint64_t>(counter.created - counter.freed) + 1,
            tree.CountNodes());  // +1: the constructor's root predates us
}

TEST(ObserverTest, DeleteEmitsBalancedEvents) {
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 1024);
  RTree tree(&pool, opts);
  Rng rng(2);
  std::vector<Point> pts;
  for (ObjectId i = 0; i < 1500; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    pts.push_back(p);
    ASSERT_TRUE(tree.Insert(i, Rect::FromPoint(p)).ok());
  }
  CountingObserver counter;
  tree.set_observer(&counter);
  for (ObjectId i = 0; i < 1500; i += 2) {
    ASSERT_TRUE(tree.Delete(i, Rect::FromPoint(pts[i])).ok());
  }
  EXPECT_EQ(counter.removed - counter.added, 750);
}

TEST(ObserverTest, ReplayReproducesDerivedState) {
  // Build a tree with live observers, then replay the finished structure
  // into fresh ones: both sets must agree exactly.
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 1024);
  RTree tree(&pool, opts);

  MemoryOidIndex live_index;
  SummaryStructure live_summary;
  CompositeObserver composite;
  composite.Add(&live_index);
  composite.Add(&live_summary);
  tree.set_observer(&composite);
  tree.ReplayStructureTo(&composite);

  Rng rng(3);
  std::vector<Point> pts;
  for (ObjectId i = 0; i < 4000; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    pts.push_back(p);
    ASSERT_TRUE(tree.Insert(i, Rect::FromPoint(p)).ok());
  }
  for (ObjectId i = 0; i < 4000; i += 3) {
    ASSERT_TRUE(tree.Delete(i, Rect::FromPoint(pts[i])).ok());
  }

  MemoryOidIndex replayed_index;
  SummaryStructure replayed_summary;
  CompositeObserver replay;
  replay.Add(&replayed_index);
  replay.Add(&replayed_summary);
  tree.ReplayStructureTo(&replay);

  EXPECT_EQ(replayed_index.size(), live_index.size());
  for (ObjectId i = 0; i < 4000; ++i) {
    const auto a = live_index.Lookup(i);
    const auto b = replayed_index.Lookup(i);
    ASSERT_EQ(a.ok(), b.ok()) << "oid " << i;
    if (a.ok()) {
      EXPECT_EQ(a.value(), b.value());
    }
  }
  EXPECT_EQ(replayed_summary.root(), live_summary.root());
  EXPECT_EQ(replayed_summary.root_level(), live_summary.root_level());
  EXPECT_EQ(replayed_summary.root_mbr(), live_summary.root_mbr());
  EXPECT_EQ(replayed_summary.internal_node_count(),
            live_summary.internal_node_count());
  EXPECT_EQ(replayed_summary.leaf_count(), live_summary.leaf_count());
  EXPECT_TRUE(replayed_summary.SelfCheck());
}

TEST(ObserverTest, NullObserverResetsToNoop) {
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 64);
  RTree tree(&pool, opts);
  CountingObserver counter;
  tree.set_observer(&counter);
  ASSERT_TRUE(tree.Insert(1, Rect::FromPoint(Point{0.5, 0.5})).ok());
  EXPECT_EQ(counter.added, 1);
  tree.set_observer(nullptr);  // must not crash subsequent operations
  ASSERT_TRUE(tree.Insert(2, Rect::FromPoint(Point{0.6, 0.6})).ok());
  EXPECT_EQ(counter.added, 1);
}

}  // namespace
}  // namespace burtree
