#include "workload/generator.h"

#include <gtest/gtest.h>

#include <cmath>

namespace burtree {
namespace {

TEST(DistributionsTest, UniformCoversSquare) {
  Rng rng(1);
  double min_x = 1, max_x = 0;
  for (int i = 0; i < 5000; ++i) {
    const Point p = SamplePoint(rng, Distribution::kUniform);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
  }
  EXPECT_LT(min_x, 0.05);
  EXPECT_GT(max_x, 0.95);
}

TEST(DistributionsTest, GaussianClustersAtCenter) {
  Rng rng(2);
  int central = 0;
  for (int i = 0; i < 5000; ++i) {
    const Point p = SamplePoint(rng, Distribution::kGaussian);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    central += (std::abs(p.x - 0.5) < 0.24 && std::abs(p.y - 0.5) < 0.24);
  }
  // ~95% within 2 sigma per axis.
  EXPECT_GT(central, 4000);
}

TEST(DistributionsTest, SkewedPullsTowardsOrigin) {
  Rng rng(3);
  int low = 0;
  for (int i = 0; i < 5000; ++i) {
    const Point p = SamplePoint(rng, Distribution::kSkewed);
    low += (p.x < 0.125);  // u^3 < 0.125 iff u < 0.5: half the mass
  }
  EXPECT_GT(low, 2200);
  EXPECT_LT(low, 2800);
}

TEST(DistributionsTest, ParseNames) {
  Distribution d;
  EXPECT_TRUE(ParseDistribution("uniform", &d));
  EXPECT_EQ(d, Distribution::kUniform);
  EXPECT_TRUE(ParseDistribution("Gaussian", &d));
  EXPECT_EQ(d, Distribution::kGaussian);
  EXPECT_TRUE(ParseDistribution("SKEW", &d));
  EXPECT_EQ(d, Distribution::kSkewed);
  EXPECT_FALSE(ParseDistribution("pareto", &d));
}

TEST(WorkloadGeneratorTest, DeterministicStreams) {
  WorkloadOptions opts;
  opts.num_objects = 100;
  opts.seed = 7;
  WorkloadGenerator a(opts), b(opts);
  EXPECT_EQ(a.initial_positions().size(), 100u);
  for (int i = 0; i < 500; ++i) {
    const auto ua = a.NextUpdate();
    const auto ub = b.NextUpdate();
    EXPECT_EQ(ua.oid, ub.oid);
    EXPECT_EQ(ua.to, ub.to);
    EXPECT_EQ(a.NextQueryWindow(), b.NextQueryWindow());
  }
}

TEST(WorkloadGeneratorTest, RoundRobinObjectSelection) {
  WorkloadOptions opts;
  opts.num_objects = 10;
  WorkloadGenerator g(opts);
  for (int round = 0; round < 3; ++round) {
    for (ObjectId i = 0; i < 10; ++i) {
      EXPECT_EQ(g.NextUpdate().oid, i);
    }
  }
}

TEST(WorkloadGeneratorTest, MovesAreBoundedAndChained) {
  WorkloadOptions opts;
  opts.num_objects = 50;
  opts.max_move_distance = 0.05;
  WorkloadGenerator g(opts);
  for (int i = 0; i < 2000; ++i) {
    const auto u = g.NextUpdate();
    // `from` is the object's previous position (chained state).
    EXPECT_EQ(u.to, g.position(u.oid));
    EXPECT_GE(u.to.x, 0.0);
    EXPECT_LE(u.to.x, 1.0);
    EXPECT_GE(u.to.y, 0.0);
    EXPECT_LE(u.to.y, 1.0);
    // Reflection can at most preserve the displacement magnitude.
    EXPECT_LE(u.from.DistanceTo(u.to), 0.05 * std::sqrt(2.0) + 1e-9);
  }
}

TEST(WorkloadGeneratorTest, QueryWindowsRespectMaxDim) {
  WorkloadOptions opts;
  opts.query_max_dim = 0.07;
  WorkloadGenerator g(opts);
  for (int i = 0; i < 2000; ++i) {
    const Rect w = g.NextQueryWindow();
    EXPECT_GE(w.min_x, 0.0);
    EXPECT_LE(w.max_x, 1.0);
    EXPECT_GE(w.min_y, 0.0);
    EXPECT_LE(w.max_y, 1.0);
    EXPECT_LE(w.Width(), 0.07);
    EXPECT_LE(w.Height(), 0.07);
  }
}

TEST(WorkloadGeneratorTest, PerThreadUpdatesUseCallerRng) {
  WorkloadOptions opts;
  opts.num_objects = 10;
  WorkloadGenerator g(opts);
  Rng rng(5);
  const auto u = g.NextUpdateFor(3, rng);
  EXPECT_EQ(u.oid, 3u);
  EXPECT_EQ(g.position(3), u.to);
}

}  // namespace
}  // namespace burtree
