// Sharded-pool tests: concurrent pin/unpin correctness, the per-shard
// eviction-order property, and the regression that shard count 1 behaves
// byte-identically to the classic single-latch LRU pool.
#include <atomic>
#include <cstring>
#include <list>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "buffer/buffer_pool.h"
#include "buffer/page_guard.h"
#include "common/random.h"
#include "storage/page_file.h"

namespace burtree {
namespace {

constexpr size_t kPageSize = 256;

TEST(BufferPoolShardTest, CapacitySplitsAcrossShardsExactly) {
  PageFile file(kPageSize);
  BufferPool pool(&file, 10, 4);
  EXPECT_EQ(pool.num_shards(), 4u);
  size_t sum = 0;
  for (size_t s = 0; s < pool.num_shards(); ++s) {
    sum += pool.shard_capacity(s);
    // Even split: no shard deviates from capacity/shards by more than 1.
    EXPECT_GE(pool.shard_capacity(s), 10u / 4u);
    EXPECT_LE(pool.shard_capacity(s), 10u / 4u + 1);
  }
  EXPECT_EQ(sum, 10u);
}

TEST(BufferPoolShardTest, PagesMapToShardsByPageId) {
  PageFile file(kPageSize);
  BufferPool pool(&file, 16, 4);
  for (PageId id = 0; id < 16; ++id) {
    EXPECT_EQ(pool.shard_of(id), id % 4);
  }
}

TEST(BufferPoolShardTest, EvictionOrderIsLruWithinEachShard) {
  PageFile file(kPageSize);
  // 2 shards x 2 frames. NewPage allocates ids 0..5: evens hit shard 0,
  // odds shard 1.
  BufferPool pool(&file, 4, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    Page* p = pool.NewPage();
    ids.push_back(p->page_id());
    p->data()[0] = static_cast<uint8_t>(0x10 + i);
    pool.UnpinPage(p->page_id(), true);
  }
  ASSERT_EQ(ids, (std::vector<PageId>{0, 1, 2, 3}));
  // Touch page 0 so page 2 becomes shard 0's LRU victim.
  ASSERT_TRUE(pool.FetchPage(0).ok());
  pool.UnpinPage(0, false);

  // Adding page 4 (shard 0) must evict page 2, not page 0, and must not
  // disturb shard 1 at all.
  Page* p4 = pool.NewPage();
  ASSERT_EQ(p4->page_id(), 4u);
  pool.UnpinPage(4, true);

  uint64_t reads_before = file.io_stats().reads();
  ASSERT_TRUE(pool.FetchPage(0).ok());  // still resident: hit
  pool.UnpinPage(0, false);
  ASSERT_TRUE(pool.FetchPage(1).ok());  // shard 1 untouched: hit
  pool.UnpinPage(1, false);
  ASSERT_TRUE(pool.FetchPage(3).ok());  // shard 1 untouched: hit
  pool.UnpinPage(3, false);
  EXPECT_EQ(file.io_stats().reads(), reads_before);

  auto res = pool.FetchPage(2);  // the victim: must come from disk
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(file.io_stats().reads(), reads_before + 1);
  EXPECT_EQ(res.value()->data()[0], 0x12);  // dirty victim was written back
  pool.UnpinPage(2, false);
}

TEST(BufferPoolShardTest, EvictionOrderPropertyPerShard) {
  // Property: within one shard, victims leave in exact order of last
  // unpin. Drive a single-shard-wide pool through a scripted touch order
  // and check the miss sequence matches the LRU prediction.
  PageFile file(kPageSize);
  BufferPool pool(&file, 8, 4);  // 2 frames per shard
  // Pages 0,4,8,12,16 all land in shard 0 (id % 4 == 0).
  std::vector<PageId> ids;
  for (int i = 0; i < 20; ++i) {
    Page* p = pool.NewPage();
    ids.push_back(p->page_id());
    pool.UnpinPage(p->page_id(), false);
  }
  // Shard 0 now holds {12, 16} (LRU: 12). Touch in order 16, 12; then
  // fetch 8 -> evicts 16 (LRU after the touches); then 4 -> evicts 12.
  for (PageId id : {16u, 12u}) {
    ASSERT_TRUE(pool.FetchPage(id).ok());
    pool.UnpinPage(id, false);
  }
  for (PageId id : {8u, 4u}) {
    ASSERT_TRUE(pool.FetchPage(id).ok());  // miss, evicts shard-0 LRU
    pool.UnpinPage(id, false);
  }
  // Expected residency in shard 0: {8, 4}; 16 and 12 evicted in order.
  uint64_t reads_before = file.io_stats().reads();
  ASSERT_TRUE(pool.FetchPage(8).ok());
  pool.UnpinPage(8, false);
  ASSERT_TRUE(pool.FetchPage(4).ok());
  pool.UnpinPage(4, false);
  EXPECT_EQ(file.io_stats().reads(), reads_before);  // both were hits
  ASSERT_TRUE(pool.FetchPage(16).ok());
  EXPECT_EQ(file.io_stats().reads(), reads_before + 1);  // evicted earlier
  pool.UnpinPage(16, false);
}

TEST(BufferPoolShardTest, ConcurrentPinUnpinFrom16Threads) {
  PageFile file(kPageSize);
  const size_t kPages = 64;
  for (size_t i = 0; i < kPages; ++i) file.Allocate();
  BufferPool pool(&file, 32, 8);

  constexpr int kThreads = 16;
  constexpr uint64_t kOpsPerThread = 2000;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(977 + t);
      for (uint64_t i = 0; i < kOpsPerThread && !failed; ++i) {
        const PageId id = static_cast<PageId>(rng.NextBelow(kPages));
        auto res = pool.FetchPage(id);
        if (!res.ok() || res.value()->pin_count() < 1) {
          failed = true;
          break;
        }
        if (rng.NextBool(0.25)) {
          // Re-pin the same page: pin counts must nest correctly.
          auto res2 = pool.FetchPage(id);
          if (!res2.ok() || res2.value()->pin_count() < 2) failed = true;
          pool.UnpinPage(id, false);
        }
        // Thread-unique byte: no cross-thread data race on page images.
        res.value()->data()[16 + t] = static_cast<uint8_t>(i & 0xFF);
        pool.UnpinPage(id, /*dirty=*/rng.NextBool(0.5));
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed);

  const BufferStats stats = pool.stats();
  EXPECT_GE(stats.hits + stats.misses, kThreads * kOpsPerThread);
  // Every pin was matched by an unpin: each page fetches at pin count 1.
  for (PageId id = 0; id < kPages; ++id) {
    auto res = pool.FetchPage(id);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.value()->pin_count(), 1) << "leaked pin on page " << id;
    pool.UnpinPage(id, false);
  }
  // With all pins released the pool must respect its frame budget.
  EXPECT_LE(pool.resident_frames(), 32u);
  EXPECT_TRUE(pool.FlushAll().ok());

  const BufferPoolStats ps = pool.pool_stats();
  EXPECT_EQ(ps.shards.size(), 8u);
  BufferStats total = ps.total();
  EXPECT_EQ(total.hits, pool.stats().hits);
  EXPECT_EQ(total.misses, pool.stats().misses);
}

// Reference model of the pre-sharding pool: one map, one LRU list,
// immediate per-page write-back. Drives its own PageFile so the disk
// images of model and pool can be compared byte for byte.
class ReferenceLru {
 public:
  ReferenceLru(PageFile* file, size_t capacity)
      : file_(file), capacity_(capacity) {}
  ~ReferenceLru() {
    FlushAll();
  }

  Page* Fetch(PageId id) {
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      Frame* f = it->second.get();
      ++hits_;
      if (f->in_lru) {
        lru_.erase(f->lru_it);
        f->in_lru = false;
      }
      f->page.Pin();
      return &f->page;
    }
    ++misses_;
    auto f = std::make_unique<Frame>(file_->page_size());
    EXPECT_TRUE(file_->Read(id, f->page.data()).ok());
    f->page.set_page_id(id);
    f->page.Pin();
    Page* p = &f->page;
    frames_.emplace(id, std::move(f));
    EvictToCapacity();
    return p;
  }

  Page* New() {
    PageId id = file_->Allocate();
    auto f = std::make_unique<Frame>(file_->page_size());
    f->page.set_page_id(id);
    f->page.set_dirty(true);
    f->page.Pin();
    Page* p = &f->page;
    frames_.emplace(id, std::move(f));
    EvictToCapacity();
    return p;
  }

  void Unpin(PageId id, bool dirty) {
    Frame* f = frames_.at(id).get();
    if (dirty) f->page.set_dirty(true);
    f->page.Unpin();
    if (f->page.pin_count() == 0) {
      lru_.push_front(id);
      f->lru_it = lru_.begin();
      f->in_lru = true;
      EvictToCapacity();
    }
  }

  void FlushAll() {
    for (auto& [id, f] : frames_) {
      if (!f->page.is_dirty()) continue;
      EXPECT_TRUE(file_->Write(id, f->page.data()).ok());
      f->page.set_dirty(false);
    }
  }

  void Delete(PageId id) {
    auto it = frames_.find(id);
    if (it != frames_.end()) {
      if (it->second->in_lru) lru_.erase(it->second->lru_it);
      frames_.erase(it);
    }
    EXPECT_TRUE(file_->Free(id).ok());
  }

  void Resize(size_t capacity) {
    capacity_ = capacity;
    EvictToCapacity();
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t resident() const { return frames_.size(); }

 private:
  struct Frame {
    explicit Frame(size_t n) : page(n) {}
    Page page;
    std::list<PageId>::iterator lru_it;
    bool in_lru = false;
  };

  void EvictToCapacity() {
    while (frames_.size() > capacity_ && !lru_.empty()) {
      PageId victim = lru_.back();
      lru_.pop_back();
      Frame* f = frames_.at(victim).get();
      if (f->page.is_dirty()) {
        EXPECT_TRUE(file_->Write(victim, f->page.data()).ok());
      }
      frames_.erase(victim);
    }
  }

  PageFile* file_;
  size_t capacity_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  std::list<PageId> lru_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

TEST(BufferPoolShardTest, ShardCountOneIsByteIdenticalToClassicLru) {
  // Replay one pseudo-random op script against the sharded pool at shard
  // count 1 and against the reference single-LRU model, each over its own
  // PageFile, and require identical I/O counts, hit/miss streams, and
  // final disk bytes.
  PageFile pool_file(kPageSize);
  PageFile ref_file(kPageSize);
  BufferPool pool(&pool_file, 6, 1);
  ReferenceLru ref(&ref_file, 6);

  std::vector<PageId> live;
  Rng rng(20030901);
  for (int step = 0; step < 4000; ++step) {
    const double r = rng.NextDouble();
    if (live.empty() || r < 0.15) {
      Page* a = pool.NewPage();
      Page* b = ref.New();
      ASSERT_EQ(a->page_id(), b->page_id());
      const uint8_t v = static_cast<uint8_t>(step & 0xFF);
      a->data()[0] = v;
      b->data()[0] = v;
      live.push_back(a->page_id());
      pool.UnpinPage(a->page_id(), true);
      ref.Unpin(b->page_id(), true);
    } else if (r < 0.80) {
      const PageId id = live[rng.NextBelow(live.size())];
      auto res = pool.FetchPage(id);
      ASSERT_TRUE(res.ok());
      Page* b = ref.Fetch(id);
      ASSERT_EQ(0, std::memcmp(res.value()->data(), b->data(), kPageSize))
          << "divergent image for page " << id << " at step " << step;
      const bool dirty = rng.NextBool(0.5);
      if (dirty) {
        const uint8_t v = static_cast<uint8_t>((step >> 2) & 0xFF);
        res.value()->data()[1] = v;
        b->data()[1] = v;
      }
      pool.UnpinPage(id, dirty);
      ref.Unpin(id, dirty);
    } else if (r < 0.88) {
      const size_t k = rng.NextBelow(live.size());
      const PageId id = live[k];
      ASSERT_TRUE(pool.DeletePage(id).ok());
      ref.Delete(id);
      live.erase(live.begin() + static_cast<long>(k));
    } else if (r < 0.95) {
      const size_t cap = 1 + rng.NextBelow(10);
      pool.Resize(cap);
      ref.Resize(cap);
    } else {
      ASSERT_TRUE(pool.FlushAll().ok());
      ref.FlushAll();
    }
    ASSERT_EQ(pool.resident_frames(), ref.resident()) << "step " << step;
    ASSERT_EQ(pool.stats().hits, ref.hits()) << "step " << step;
    ASSERT_EQ(pool.stats().misses, ref.misses()) << "step " << step;
  }

  ASSERT_TRUE(pool.FlushAll().ok());
  ref.FlushAll();
  // Same access stream => same disk traffic, page for page.
  EXPECT_EQ(pool_file.io_stats().reads(), ref_file.io_stats().reads());
  EXPECT_EQ(pool_file.io_stats().writes(), ref_file.io_stats().writes());
  EXPECT_EQ(pool_file.live_pages(), ref_file.live_pages());
  // Byte-identical disk images for every live page.
  std::vector<uint8_t> a(kPageSize), b(kPageSize);
  for (PageId id : live) {
    ASSERT_TRUE(pool_file.Read(id, a.data()).ok());
    ASSERT_TRUE(ref_file.Read(id, b.data()).ok());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), kPageSize))
        << "page " << id;
  }
}

TEST(BufferPoolShardTest, PassThroughWorksWithManyShards) {
  PageFile file(kPageSize);
  BufferPool pool(&file, 0, 8);
  Page* p = pool.NewPage();
  const PageId id = p->page_id();
  p->data()[0] = 0x7E;
  pool.UnpinPage(id, true);  // immediate eviction + write-back
  EXPECT_EQ(file.io_stats().writes(), 1u);
  EXPECT_EQ(pool.resident_frames(), 0u);
  auto res = pool.FetchPage(id);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value()->data()[0], 0x7E);
  pool.UnpinPage(id, false);
}

TEST(BufferPoolShardTest, BatchedFlushAllWritesEveryDirtyFrameOnce) {
  PageFile file(kPageSize);
  BufferPool pool(&file, 16, 4);
  for (int i = 0; i < 12; ++i) {
    Page* p = pool.NewPage();
    p->data()[0] = static_cast<uint8_t>(i);
    pool.UnpinPage(p->page_id(), true);
  }
  EXPECT_EQ(file.io_stats().writes(), 0u);  // still buffered
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(file.io_stats().writes(), 12u);
  ASSERT_TRUE(pool.FlushAll().ok());  // second flush: everything clean
  EXPECT_EQ(file.io_stats().writes(), 12u);
  EXPECT_EQ(pool.stats().flushes, 12u);
}

TEST(BufferPoolShardTest, PageGuardIsMoveOnlyWithExplicitRelease) {
  // The header's static_asserts enforce this at compile time; keep a
  // runtime mirror so the contract shows up in the test listing too.
  EXPECT_FALSE(std::is_copy_constructible_v<PageGuard>);
  EXPECT_FALSE(std::is_copy_assignable_v<PageGuard>);
  EXPECT_TRUE(std::is_nothrow_move_constructible_v<PageGuard>);
  EXPECT_TRUE(std::is_nothrow_move_assignable_v<PageGuard>);

  PageFile file(kPageSize);
  BufferPool pool(&file, 4, 2);
  PageGuard g = PageGuard::New(&pool);
  const PageId id = g.id();
  g.Release();
  EXPECT_FALSE(g.valid());
  g.Release();  // idempotent
  auto res = pool.FetchPage(id);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value()->pin_count(), 1);
  pool.UnpinPage(id, false);
}

// ---------------------------------------------------------------------------
// Eviction write-back runs outside the shard latch: a slow flush on
// shard k must not block hits on shard k.
// ---------------------------------------------------------------------------

TEST(BufferPoolShardTest, SlowVictimFlushDoesNotBlockSameShardHits) {
  PageFile file(kPageSize);
  // Sleep-model disk: a write-back batch stalls its caller for real time.
  constexpr uint64_t kFlushMs = 300;
  for (int i = 0; i < 4; ++i) file.Allocate();
  BufferPool pool(&file, /*capacity=*/2, /*shards=*/1);

  // Make page 0 resident and hot (stays pinned so it can't be evicted),
  // page 1 resident-dirty and unpinned (the future victim) — with the
  // disk still fast, so nothing has flushed yet.
  ASSERT_TRUE(pool.FetchPage(0).ok());  // pinned for the whole test
  ASSERT_TRUE(pool.FetchPage(1).ok());
  pool.UnpinPage(1, /*dirty=*/true);

  file.set_io_latency_ns(kFlushMs * 1000 * 1000);
  file.set_io_latency_model(PageFile::IoLatencyModel::kSleep);

  // Thread A allocates a fresh page — no disk read, so the only slow
  // operation it can perform is the eviction write-back of dirty page 1
  // that NewPage triggers (3 frames > budget 2) on the single shard.
  std::atomic<bool> started{false};
  std::atomic<double> new_page_ms{0.0};
  std::thread slow([&]() {
    started = true;
    const auto a0 = std::chrono::steady_clock::now();
    Page* p = pool.NewPage();
    new_page_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - a0)
                      .count();
    pool.UnpinPage(p->page_id(), /*dirty=*/false);
  });
  while (!started) std::this_thread::yield();
  // Give the evictor time to detach the victim and enter the latch-free
  // write-back sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Hit resident page 0 on the SAME shard while the flush sleeps.
  const auto t0 = std::chrono::steady_clock::now();
  auto hit = pool.FetchPage(0);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  ASSERT_TRUE(hit.ok());
  pool.UnpinPage(0, false);
  slow.join();
  // Non-vacuousness: the victim flush really happened inside NewPage,
  // i.e. it was in flight while the hit above was timed.
  EXPECT_GE(new_page_ms.load(), kFlushMs * 0.8)
      << "eviction write-back did not run where the test expects";
  // The hit must not have waited out the write-back (generous margin:
  // half the flush latency).
  EXPECT_LT(ms, kFlushMs / 2.0) << "hit blocked behind victim flush";

  file.set_io_latency_ns(0);
  pool.UnpinPage(0, false);  // drop the long-lived pin from the setup
  ASSERT_TRUE(pool.FlushAll().ok());
}

TEST(BufferPoolShardTest, RefetchOfInFlightVictimWaitsAndSeesFreshBytes) {
  PageFile file(kPageSize);
  for (int i = 0; i < 8; ++i) file.Allocate();
  BufferPool pool(&file, /*capacity=*/1, /*shards=*/1);

  // Dirty page 0 with a marker, unpin (resident, within budget).
  {
    auto res = pool.FetchPage(0);
    ASSERT_TRUE(res.ok());
    res.value()->data()[7] = 0xEE;
    pool.UnpinPage(0, /*dirty=*/true);
  }
  file.set_io_latency_ns(120ull * 1000 * 1000);  // 120 ms writes/reads
  file.set_io_latency_model(PageFile::IoLatencyModel::kSleep);

  // Evict page 0 by fetching page 1; re-fetch page 0 concurrently while
  // its write-back is in flight. The re-fetch must wait for the batch
  // (never read the stale disk image) and return the marker byte.
  std::thread evictor([&]() {
    auto res = pool.FetchPage(1);
    ASSERT_TRUE(res.ok());
    pool.UnpinPage(1, /*dirty=*/false);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(140));
  // By now the evictor unpinned page 1 -> over budget -> page 0 (LRU
  // victim, dirty) is being written back with the sleeping disk.
  auto res = pool.FetchPage(0);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value()->data()[7], 0xEE);
  pool.UnpinPage(0, false);
  evictor.join();
  file.set_io_latency_ns(0);
  ASSERT_TRUE(pool.FlushAll().ok());
}

}  // namespace
}  // namespace burtree
