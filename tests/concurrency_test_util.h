// Shared helpers for the multi-threaded test suites: invariant audits
// reused by the stress/torture tests and the retry wrapper for noisy
// wall-clock throughput comparisons (factored out of experiment_test so
// every tps-comparison assertion tolerates oversubscribed CI hosts the
// same way).
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/experiment.h"

namespace burtree {
namespace testutil {

/// Component-level form of the oid-index audit, usable on a recovered
/// bare tree (WAL crash recovery rebuilds the hash index from the tree
/// via ReplayStructureTo before calling this): each listed oid must
/// resolve through `oidx` to the leaf that physically holds its entry.
inline void ExpectOidIndexConsistent(RTree& tree, HashIndex& oidx,
                                     const std::vector<ObjectId>& oids) {
  for (const ObjectId oid : oids) {
    auto leaf_or = oidx.Lookup(oid);
    ASSERT_TRUE(leaf_or.ok()) << "oid " << oid << " missing from index";
    PageGuard g = PageGuard::Fetch(tree.pool(), leaf_or.value());
    NodeView v(g.data(), tree.options().page_size,
               tree.options().parent_pointers);
    ASSERT_TRUE(v.is_leaf());
    EXPECT_GE(v.FindOidSlot(oid), 0)
        << "oid " << oid << " not in its indexed leaf " << leaf_or.value();
  }
}

/// Every oid in [0, num_objects) must resolve through the hash index to
/// the leaf that physically holds its data entry — a desync here is how
/// a lost latch corrupts bottom-up updates.
inline void ExpectOidIndexConsistent(IndexSystem& sys,
                                     uint64_t num_objects) {
  HashIndex* oidx = sys.oid_index();
  ASSERT_NE(oidx, nullptr);
  std::vector<ObjectId> oids(num_objects);
  for (ObjectId oid = 0; oid < num_objects; ++oid) oids[oid] = oid;
  ExpectOidIndexConsistent(sys.tree(), *oidx, oids);
}

/// Every data entry in the tree, by oid — object conservation audits on
/// recovered trees check membership and duplication against this.
inline std::vector<ObjectId> CollectOids(RTree& tree) {
  std::vector<ObjectId> oids;
  EXPECT_TRUE(
      tree.Query(Rect(0, 0, 1, 1), [&](ObjectId oid, const Rect&) {
            oids.push_back(oid);
          })
          .ok());
  return oids;
}

/// Full-space match count over a bare tree (recovered-tree variant).
inline uint64_t FullSpaceCount(RTree& tree) {
  uint64_t count = 0;
  EXPECT_TRUE(
      tree.Query(Rect(0, 0, 1, 1), [&](ObjectId, const Rect&) { ++count; })
          .ok());
  return count;
}

/// Full-space match count — object conservation (nothing lost, nothing
/// duplicated) after a concurrent run.
inline uint64_t FullSpaceCount(IndexSystem& sys) {
  return FullSpaceCount(sys.tree());
}

/// Wall-clock tps comparisons are noisy when the host is oversubscribed
/// (ctest -j on few cores). The figure claims are qualitative, so allow
/// a few re-measurements before declaring one violated: `faster` and
/// `slower` each run one measurement and return its tps; the comparison
/// holds as soon as one attempt sees faster > slower.
template <typename FasterFn, typename SlowerFn>
bool EventuallyFaster(FasterFn faster, SlowerFn slower, int attempts = 3) {
  for (int attempt = 0; attempt < attempts; ++attempt) {
    const double f = faster();
    const double s = slower();
    if (f > s) return true;
  }
  return false;
}

/// Runs one throughput measurement, asserting success, returning tps.
inline double MustRunTps(const ThroughputConfig& cfg) {
  auto res = RunThroughput(cfg);
  EXPECT_TRUE(res.ok()) << res.status().ToString();
  return res.ok() ? res.value().tps : 0.0;
}

}  // namespace testutil
}  // namespace burtree
