#include "storage/page_file.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace burtree {
namespace {

constexpr size_t kPageSize = 256;

TEST(PageFileTest, AllocateGrowsFile) {
  PageFile f(kPageSize);
  EXPECT_EQ(f.live_pages(), 0u);
  const PageId a = f.Allocate();
  const PageId b = f.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(f.live_pages(), 2u);
}

TEST(PageFileTest, WriteThenReadRoundTrips) {
  PageFile f(kPageSize);
  const PageId id = f.Allocate();
  uint8_t in[kPageSize], out[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) in[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(f.Write(id, in).ok());
  ASSERT_TRUE(f.Read(id, out).ok());
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
}

TEST(PageFileTest, FreshPageIsZeroed) {
  PageFile f(kPageSize);
  const PageId id = f.Allocate();
  uint8_t out[kPageSize];
  ASSERT_TRUE(f.Read(id, out).ok());
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ(out[i], 0);
}

TEST(PageFileTest, FreeAndReuse) {
  PageFile f(kPageSize);
  const PageId a = f.Allocate();
  uint8_t buf[kPageSize];
  std::memset(buf, 0xAB, sizeof(buf));
  ASSERT_TRUE(f.Write(a, buf).ok());
  ASSERT_TRUE(f.Free(a).ok());
  EXPECT_EQ(f.live_pages(), 0u);
  // Reuse returns the same slot, zeroed.
  const PageId b = f.Allocate();
  EXPECT_EQ(a, b);
  ASSERT_TRUE(f.Read(b, buf).ok());
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ(buf[i], 0);
}

TEST(PageFileTest, AccessAfterFreeFails) {
  PageFile f(kPageSize);
  const PageId id = f.Allocate();
  ASSERT_TRUE(f.Free(id).ok());
  uint8_t buf[kPageSize] = {};
  EXPECT_FALSE(f.Read(id, buf).ok());
  EXPECT_FALSE(f.Write(id, buf).ok());
  EXPECT_FALSE(f.Free(id).ok());  // double free rejected
}

TEST(PageFileTest, OutOfRangeAccessFails) {
  PageFile f(kPageSize);
  uint8_t buf[kPageSize] = {};
  EXPECT_FALSE(f.Read(99, buf).ok());
  EXPECT_FALSE(f.Write(99, buf).ok());
}

TEST(PageFileTest, IoStatsCountAccesses) {
  PageFile f(kPageSize);
  const PageId id = f.Allocate();
  uint8_t buf[kPageSize] = {};
  EXPECT_EQ(f.io_stats().total_io(), 0u);  // allocation is not I/O
  ASSERT_TRUE(f.Write(id, buf).ok());
  ASSERT_TRUE(f.Read(id, buf).ok());
  ASSERT_TRUE(f.Read(id, buf).ok());
  EXPECT_EQ(f.io_stats().writes(), 1u);
  EXPECT_EQ(f.io_stats().reads(), 2u);
}

TEST(PageFileTest, ThreadIoCounterIsPerThread) {
  PageFile f(kPageSize);
  const PageId id = f.Allocate();
  uint8_t buf[kPageSize] = {};
  PageFile::ResetThreadIo();
  ASSERT_TRUE(f.Write(id, buf).ok());
  ASSERT_TRUE(f.Read(id, buf).ok());
  EXPECT_EQ(PageFile::thread_io(), 2u);

  std::thread other([&]() {
    PageFile::ResetThreadIo();
    EXPECT_EQ(PageFile::thread_io(), 0u);
    uint8_t b2[kPageSize] = {};
    ASSERT_TRUE(f.Read(id, b2).ok());
    EXPECT_EQ(PageFile::thread_io(), 1u);
  });
  other.join();
  EXPECT_EQ(PageFile::thread_io(), 2u);  // unaffected by the other thread
}

TEST(PageFileTest, ConcurrentDisjointWrites) {
  PageFile f(kPageSize);
  constexpr int kThreads = 8;
  std::vector<PageId> ids;
  for (int i = 0; i < kThreads; ++i) ids.push_back(f.Allocate());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      uint8_t buf[kPageSize];
      std::memset(buf, t + 1, sizeof(buf));
      for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(f.Write(ids[t], buf).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    uint8_t buf[kPageSize];
    ASSERT_TRUE(f.Read(ids[t], buf).ok());
    EXPECT_EQ(buf[0], t + 1);
    EXPECT_EQ(buf[kPageSize - 1], t + 1);
  }
}

TEST(PageFileTest, ConcurrentAllocateIsRaceFree) {
  PageFile f(kPageSize);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::vector<PageId>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) got[t].push_back(f.Allocate());
    });
  }
  for (auto& th : threads) th.join();
  std::vector<PageId> all;
  for (auto& v : got) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace burtree
