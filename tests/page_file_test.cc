#include "storage/page_file.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace burtree {
namespace {

constexpr size_t kPageSize = 256;

TEST(PageFileTest, AllocateGrowsFile) {
  PageFile f(kPageSize);
  EXPECT_EQ(f.live_pages(), 0u);
  const PageId a = f.Allocate();
  const PageId b = f.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(f.live_pages(), 2u);
}

TEST(PageFileTest, WriteThenReadRoundTrips) {
  PageFile f(kPageSize);
  const PageId id = f.Allocate();
  uint8_t in[kPageSize], out[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) in[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(f.Write(id, in).ok());
  ASSERT_TRUE(f.Read(id, out).ok());
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
}

TEST(PageFileTest, FreshPageIsZeroed) {
  PageFile f(kPageSize);
  const PageId id = f.Allocate();
  uint8_t out[kPageSize];
  ASSERT_TRUE(f.Read(id, out).ok());
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ(out[i], 0);
}

TEST(PageFileTest, FreeAndReuse) {
  PageFile f(kPageSize);
  const PageId a = f.Allocate();
  uint8_t buf[kPageSize];
  std::memset(buf, 0xAB, sizeof(buf));
  ASSERT_TRUE(f.Write(a, buf).ok());
  ASSERT_TRUE(f.Free(a).ok());
  EXPECT_EQ(f.live_pages(), 0u);
  // Reuse returns the same slot, zeroed.
  const PageId b = f.Allocate();
  EXPECT_EQ(a, b);
  ASSERT_TRUE(f.Read(b, buf).ok());
  for (size_t i = 0; i < kPageSize; ++i) EXPECT_EQ(buf[i], 0);
}

TEST(PageFileTest, AccessAfterFreeFails) {
  PageFile f(kPageSize);
  const PageId id = f.Allocate();
  ASSERT_TRUE(f.Free(id).ok());
  uint8_t buf[kPageSize] = {};
  EXPECT_FALSE(f.Read(id, buf).ok());
  EXPECT_FALSE(f.Write(id, buf).ok());
  EXPECT_FALSE(f.Free(id).ok());  // double free rejected
}

TEST(PageFileTest, OutOfRangeAccessFails) {
  PageFile f(kPageSize);
  uint8_t buf[kPageSize] = {};
  EXPECT_FALSE(f.Read(99, buf).ok());
  EXPECT_FALSE(f.Write(99, buf).ok());
}

TEST(PageFileTest, IoStatsCountAccesses) {
  PageFile f(kPageSize);
  const PageId id = f.Allocate();
  uint8_t buf[kPageSize] = {};
  EXPECT_EQ(f.io_stats().total_io(), 0u);  // allocation is not I/O
  ASSERT_TRUE(f.Write(id, buf).ok());
  ASSERT_TRUE(f.Read(id, buf).ok());
  ASSERT_TRUE(f.Read(id, buf).ok());
  EXPECT_EQ(f.io_stats().writes(), 1u);
  EXPECT_EQ(f.io_stats().reads(), 2u);
}

TEST(PageFileTest, ThreadIoCounterIsPerThread) {
  PageFile f(kPageSize);
  const PageId id = f.Allocate();
  uint8_t buf[kPageSize] = {};
  PageFile::ResetThreadIo();
  ASSERT_TRUE(f.Write(id, buf).ok());
  ASSERT_TRUE(f.Read(id, buf).ok());
  EXPECT_EQ(PageFile::thread_io(), 2u);

  std::thread other([&]() {
    PageFile::ResetThreadIo();
    EXPECT_EQ(PageFile::thread_io(), 0u);
    uint8_t b2[kPageSize] = {};
    ASSERT_TRUE(f.Read(id, b2).ok());
    EXPECT_EQ(PageFile::thread_io(), 1u);
  });
  other.join();
  EXPECT_EQ(PageFile::thread_io(), 2u);  // unaffected by the other thread
}

TEST(PageFileTest, ConcurrentDisjointWrites) {
  PageFile f(kPageSize);
  constexpr int kThreads = 8;
  std::vector<PageId> ids;
  for (int i = 0; i < kThreads; ++i) ids.push_back(f.Allocate());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      uint8_t buf[kPageSize];
      std::memset(buf, t + 1, sizeof(buf));
      for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(f.Write(ids[t], buf).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    uint8_t buf[kPageSize];
    ASSERT_TRUE(f.Read(ids[t], buf).ok());
    EXPECT_EQ(buf[0], t + 1);
    EXPECT_EQ(buf[kPageSize - 1], t + 1);
  }
}

TEST(PageFileTest, ReadPagesBatchCountsPerPageIo) {
  PageFile f(kPageSize);
  std::vector<PageId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(f.Allocate());
    uint8_t buf[kPageSize];
    std::memset(buf, 0x30 + i, kPageSize);
    ASSERT_TRUE(f.Write(ids[static_cast<size_t>(i)], buf).ok());
  }
  const uint64_t reads_before = f.io_stats().reads();
  PageFile::ResetThreadIo();
  std::vector<std::vector<uint8_t>> out(4, std::vector<uint8_t>(kPageSize));
  std::vector<PageReadRequest> reqs;
  for (size_t i = 0; i < 4; ++i) {
    reqs.push_back(PageReadRequest{ids[i], out[i].data()});
  }
  ASSERT_TRUE(f.ReadPages(reqs).ok());
  EXPECT_EQ(f.io_stats().reads(), reads_before + 4);  // paper metric: count
  EXPECT_EQ(PageFile::thread_io(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i][0], 0x30 + static_cast<int>(i));
  }
  EXPECT_TRUE(f.ReadPages({}).ok());  // empty batch: no-op
  EXPECT_EQ(f.io_stats().reads(), reads_before + 4);
}

TEST(PageFileTest, ReadPagesFailsWholeBatchOnNonLivePage) {
  PageFile f(kPageSize);
  const PageId a = f.Allocate();
  uint8_t seed[kPageSize];
  std::memset(seed, 0x7C, kPageSize);
  ASSERT_TRUE(f.Write(a, seed).ok());
  std::vector<uint8_t> x(kPageSize, 0xFF), y(kPageSize, 0xFF);
  std::vector<PageReadRequest> reqs{{a, x.data()}, {a + 1, y.data()}};
  const uint64_t reads_before = f.io_stats().reads();
  EXPECT_FALSE(f.ReadPages(reqs).ok());
  EXPECT_EQ(f.io_stats().reads(), reads_before);  // nothing counted
  EXPECT_EQ(x[0], 0xFF);  // nothing copied before the validation pass
}

TEST(PageFileTest, FlushDirtyBatchGroupWritesEveryPage) {
  PageFile f(kPageSize);
  std::vector<PageId> ids{f.Allocate(), f.Allocate(), f.Allocate()};
  std::vector<std::vector<uint8_t>> imgs;
  for (size_t i = 0; i < ids.size(); ++i) {
    imgs.emplace_back(kPageSize, static_cast<uint8_t>(0x60 + i));
  }
  std::vector<PageWriteRequest> reqs;
  for (size_t i = 0; i < ids.size(); ++i) {
    reqs.push_back(PageWriteRequest{ids[i], imgs[i].data()});
  }
  const uint64_t writes_before = f.io_stats().writes();
  ASSERT_TRUE(f.FlushDirtyBatch(reqs).ok());
  EXPECT_EQ(f.io_stats().writes(), writes_before + 3);
  for (size_t i = 0; i < ids.size(); ++i) {
    uint8_t buf[kPageSize];
    ASSERT_TRUE(f.Read(ids[i], buf).ok());
    EXPECT_EQ(buf[0], 0x60 + static_cast<int>(i));
  }
  // A non-live id anywhere fails the batch before any bytes land.
  std::vector<PageWriteRequest> bad{{ids[0], imgs[1].data()},
                                    {ids[2] + 7, imgs[2].data()}};
  EXPECT_FALSE(f.FlushDirtyBatch(bad).ok());
  uint8_t buf[kPageSize];
  ASSERT_TRUE(f.Read(ids[0], buf).ok());
  EXPECT_EQ(buf[0], 0x60);  // untouched by the failed batch
}

TEST(PageFileTest, SleepLatencyModelBlocksInsteadOfSpinning) {
  PageFile f(kPageSize);
  const PageId id = f.Allocate();
  f.set_io_latency_ns(2'000'000);  // 2 ms: well above sleep granularity
  f.set_io_latency_model(PageFile::IoLatencyModel::kSleep);
  uint8_t buf[kPageSize];
  Stopwatch sw;
  ASSERT_TRUE(f.Read(id, buf).ok());
  EXPECT_GE(sw.ElapsedSeconds(), 0.002);
  // Batches charge the latency once, not per page.
  std::vector<uint8_t> o1(kPageSize), o2(kPageSize);
  std::vector<PageReadRequest> reqs{{id, o1.data()}, {id, o2.data()}};
  sw.Restart();
  ASSERT_TRUE(f.ReadPages(reqs).ok());
  const double batch_s = sw.ElapsedSeconds();
  EXPECT_GE(batch_s, 0.002);
  EXPECT_LT(batch_s, 0.5);
}

TEST(PageFileTest, ConcurrentAllocateIsRaceFree) {
  PageFile f(kPageSize);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::vector<PageId>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) got[t].push_back(f.Allocate());
    });
  }
  for (auto& th : threads) th.join();
  std::vector<PageId> all;
  for (auto& v : got) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace burtree
