#include "rtree/bulk_load.h"

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "storage/page_file.h"

namespace burtree {
namespace {

std::vector<LeafEntry> RandomEntries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<LeafEntry> entries;
  for (ObjectId i = 0; i < n; ++i) {
    entries.push_back(LeafEntry{
        Rect::FromPoint(Point{rng.NextDouble(), rng.NextDouble()}), i});
  }
  return entries;
}

TEST(BulkLoadTest, LoadsAndQueries) {
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 1024);
  RTree tree(&pool, opts);
  ASSERT_TRUE(BulkLoader::Load(&tree, RandomEntries(5000, 21)).ok());
  ASSERT_TRUE(tree.Validate(/*check_min_fill=*/false).ok());
  std::set<ObjectId> all;
  ASSERT_TRUE(tree.Query(Rect(0, 0, 1, 1), [&](ObjectId oid, const Rect&) {
    all.insert(oid);
  }).ok());
  EXPECT_EQ(all.size(), 5000u);
}

TEST(BulkLoadTest, SmallInputsStayFlat) {
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 64);
  RTree tree(&pool, opts);
  ASSERT_TRUE(BulkLoader::Load(&tree, RandomEntries(5, 22)).ok());
  EXPECT_EQ(tree.height(), 1u);
  ASSERT_TRUE(tree.Validate(false).ok());
}

TEST(BulkLoadTest, EmptyInputIsNoop) {
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 64);
  RTree tree(&pool, opts);
  ASSERT_TRUE(BulkLoader::Load(&tree, {}).ok());
  EXPECT_EQ(tree.height(), 1u);
}

TEST(BulkLoadTest, RejectsNonEmptyTree) {
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 64);
  RTree tree(&pool, opts);
  ASSERT_TRUE(tree.Insert(1, Rect::FromPoint(Point{0.5, 0.5})).ok());
  EXPECT_FALSE(BulkLoader::Load(&tree, RandomEntries(10, 23)).ok());
}

TEST(BulkLoadTest, UtilizationNearTarget) {
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 4096);
  RTree tree(&pool, opts);
  ASSERT_TRUE(BulkLoader::Load(&tree, RandomEntries(20000, 24), 0.66).ok());
  TreeShape shape = tree.CollectShape();
  EXPECT_NEAR(shape.levels[0].avg_fill, 0.66, 0.08);
  EXPECT_EQ(shape.total_entries, 20000u);
}

TEST(BulkLoadTest, PackedTreeIsShallowerOrEqual) {
  TreeOptions opts;
  // Insertion-built tree for comparison.
  PageFile f1(opts.page_size);
  BufferPool p1(&f1, 4096);
  RTree inserted(&p1, opts);
  auto entries = RandomEntries(8000, 25);
  for (const auto& e : entries) {
    ASSERT_TRUE(inserted.Insert(e.oid, e.rect).ok());
  }
  PageFile f2(opts.page_size);
  BufferPool p2(&f2, 4096);
  RTree packed(&p2, opts);
  // Pack tightly (90%): the packed tree must beat the ~70%-utilized
  // insertion-built tree on both height and node count.
  ASSERT_TRUE(BulkLoader::Load(&packed, entries, 0.9).ok());
  EXPECT_LE(packed.height(), inserted.height());
  EXPECT_LT(packed.CountNodes(), inserted.CountNodes());
}

TEST(BulkLoadTest, SupportsSubsequentUpdates) {
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 1024);
  RTree tree(&pool, opts);
  auto entries = RandomEntries(3000, 26);
  ASSERT_TRUE(BulkLoader::Load(&tree, entries).ok());
  // Delete + insert still work on the packed structure.
  Rng rng(27);
  for (int i = 0; i < 500; ++i) {
    const ObjectId oid = rng.NextBelow(3000);
    ASSERT_TRUE(tree.Delete(oid, entries[oid].rect).ok());
    entries[oid].rect =
        Rect::FromPoint(Point{rng.NextDouble(), rng.NextDouble()});
    ASSERT_TRUE(tree.Insert(oid, entries[oid].rect).ok());
  }
  ASSERT_TRUE(tree.Validate(false).ok());
  std::set<ObjectId> all;
  ASSERT_TRUE(tree.Query(Rect(0, 0, 1, 1), [&](ObjectId oid, const Rect&) {
    all.insert(oid);
  }).ok());
  EXPECT_EQ(all.size(), 3000u);
}

TEST(BulkLoadTest, ParentPointerVariant) {
  TreeOptions opts;
  opts.parent_pointers = true;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 1024);
  RTree tree(&pool, opts);
  ASSERT_TRUE(BulkLoader::Load(&tree, RandomEntries(4000, 28)).ok());
  ASSERT_TRUE(tree.Validate(false).ok());  // checks parent pointers too
}

}  // namespace
}  // namespace burtree
