#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "rtree/rtree.h"
#include "storage/page_file.h"

namespace burtree {
namespace {

struct Fixture {
  Fixture() : file(1024), pool(&file, 4096), tree(&pool, TreeOptions{}) {}
  PageFile file;
  BufferPool pool;
  RTree tree;
};

std::vector<std::pair<double, ObjectId>> BruteForceKnn(
    const std::vector<Point>& pts, const Point& q, size_t k) {
  std::vector<std::pair<double, ObjectId>> all;
  for (ObjectId i = 0; i < pts.size(); ++i) {
    all.emplace_back(q.DistanceTo(pts[i]), i);
  }
  std::sort(all.begin(), all.end());
  all.resize(std::min(k, all.size()));
  return all;
}

TEST(KnnTest, EmptyTreeReturnsNothing) {
  Fixture fx;
  auto res = fx.tree.NearestNeighbors(Point{0.5, 0.5}, 5);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().empty());
}

TEST(KnnTest, KZeroReturnsNothing) {
  Fixture fx;
  ASSERT_TRUE(fx.tree.Insert(1, Rect::FromPoint(Point{0.5, 0.5})).ok());
  auto res = fx.tree.NearestNeighbors(Point{0.5, 0.5}, 0);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().empty());
}

TEST(KnnTest, SingleObject) {
  Fixture fx;
  ASSERT_TRUE(fx.tree.Insert(42, Rect::FromPoint(Point{0.3, 0.4})).ok());
  auto res = fx.tree.NearestNeighbors(Point{0.0, 0.0}, 3);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().size(), 1u);
  EXPECT_EQ(res.value()[0].oid, 42u);
  EXPECT_DOUBLE_EQ(res.value()[0].distance, 0.5);
}

TEST(KnnTest, ResultsOrderedByDistance) {
  Fixture fx;
  Rng rng(1);
  for (ObjectId i = 0; i < 2000; ++i) {
    ASSERT_TRUE(fx.tree
                    .Insert(i, Rect::FromPoint(
                                   Point{rng.NextDouble(), rng.NextDouble()}))
                    .ok());
  }
  auto res = fx.tree.NearestNeighbors(Point{0.5, 0.5}, 20);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().size(), 20u);
  for (size_t i = 1; i < res.value().size(); ++i) {
    EXPECT_LE(res.value()[i - 1].distance, res.value()[i].distance);
  }
}

class KnnOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(KnnOracleTest, MatchesBruteForce) {
  Fixture fx;
  Rng rng(GetParam());
  std::vector<Point> pts;
  for (ObjectId i = 0; i < 3000; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    pts.push_back(p);
    ASSERT_TRUE(fx.tree.Insert(i, Rect::FromPoint(p)).ok());
  }
  for (int q = 0; q < 25; ++q) {
    const Point query{rng.NextDouble(-0.2, 1.2), rng.NextDouble(-0.2, 1.2)};
    const size_t k = 1 + rng.NextBelow(30);
    auto res = fx.tree.NearestNeighbors(query, k);
    ASSERT_TRUE(res.ok());
    const auto expect = BruteForceKnn(pts, query, k);
    ASSERT_EQ(res.value().size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      // Distances must match exactly; ids may differ under ties.
      EXPECT_DOUBLE_EQ(res.value()[i].distance, expect[i].first)
          << "query " << q << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnnOracleTest, ::testing::Values(11, 12, 13));

TEST(KnnTest, KLargerThanDataset) {
  Fixture fx;
  for (ObjectId i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        fx.tree.Insert(i, Rect::FromPoint(Point{0.1 * i, 0.5})).ok());
  }
  auto res = fx.tree.NearestNeighbors(Point{0.0, 0.5}, 50);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().size(), 10u);
}

TEST(KnnTest, PrunesNodeReads) {
  Fixture fx;
  Rng rng(2);
  for (ObjectId i = 0; i < 20000; ++i) {
    ASSERT_TRUE(fx.tree
                    .Insert(i, Rect::FromPoint(
                                   Point{rng.NextDouble(), rng.NextDouble()}))
                    .ok());
  }
  fx.pool.Resize(0);  // count raw reads
  const auto before = IoSnapshot::Take(fx.file.io_stats());
  auto res = fx.tree.NearestNeighbors(Point{0.5, 0.5}, 5);
  ASSERT_TRUE(res.ok());
  const auto after = IoSnapshot::Take(fx.file.io_stats());
  const uint64_t reads = (after - before).reads;
  // Best-first search must touch a tiny fraction of the ~1300 nodes.
  EXPECT_LT(reads, 60u);
  EXPECT_GE(reads, fx.tree.height());
}

TEST(KnnTest, WorksAfterUpdates) {
  Fixture fx;
  Rng rng(3);
  std::vector<Point> pts;
  for (ObjectId i = 0; i < 1000; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    pts.push_back(p);
    ASSERT_TRUE(fx.tree.Insert(i, Rect::FromPoint(p)).ok());
  }
  for (ObjectId i = 0; i < 1000; i += 3) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    ASSERT_TRUE(fx.tree.Delete(i, Rect::FromPoint(pts[i])).ok());
    ASSERT_TRUE(fx.tree.Insert(i, Rect::FromPoint(p)).ok());
    pts[i] = p;
  }
  const Point q{0.25, 0.75};
  auto res = fx.tree.NearestNeighbors(q, 10);
  ASSERT_TRUE(res.ok());
  const auto expect = BruteForceKnn(pts, q, 10);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(res.value()[i].distance, expect[i].first);
  }
}

}  // namespace
}  // namespace burtree
