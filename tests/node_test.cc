#include "rtree/node.h"

#include <gtest/gtest.h>

#include <vector>

namespace burtree {
namespace {

constexpr size_t kPageSize = 1024;

class NodeViewTest : public ::testing::TestWithParam<bool> {
 protected:
  NodeViewTest() : buf_(kPageSize, 0) {}
  bool parent_pointers() const { return GetParam(); }
  NodeView MakeView() {
    return NodeView(buf_.data(), kPageSize, parent_pointers());
  }
  std::vector<uint8_t> buf_;
};

TEST_P(NodeViewTest, FormatInitializesHeader) {
  NodeView v = MakeView();
  v.Format(0);
  EXPECT_TRUE(v.is_leaf());
  EXPECT_EQ(v.count(), 0u);
  EXPECT_TRUE(v.mbr().IsEmpty());
  if (parent_pointers()) {
    EXPECT_EQ(v.parent(), kInvalidPageId);
  }
}

TEST_P(NodeViewTest, LevelAndParentRoundTrip) {
  NodeView v = MakeView();
  v.Format(3);
  EXPECT_EQ(v.level(), 3u);
  EXPECT_FALSE(v.is_leaf());
  if (parent_pointers()) {
    v.set_parent(77);
    EXPECT_EQ(v.parent(), 77u);
  }
}

TEST_P(NodeViewTest, CapacityMatchesLayoutMath) {
  NodeView v = MakeView();
  v.Format(0);
  const size_t hdr = 40 + (parent_pointers() ? 4 : 0);
  EXPECT_EQ(v.capacity(), (kPageSize - hdr) / 40);
  v.Format(1);
  EXPECT_EQ(v.capacity(), (kPageSize - hdr) / 36);
  EXPECT_EQ(NodeView::CapacityFor(kPageSize, parent_pointers(), true),
            (kPageSize - hdr) / 40);
}

TEST_P(NodeViewTest, PaperScaleFanout) {
  // With the paper's 1024-byte pages the tree must stay in the height
  // regime of §5 (1M objects -> 5 levels needs fanout in the 20s).
  const uint32_t leaf = NodeView::CapacityFor(1024, parent_pointers(), true);
  const uint32_t internal =
      NodeView::CapacityFor(1024, parent_pointers(), false);
  EXPECT_GE(leaf, 20u);
  EXPECT_LE(leaf, 30u);
  EXPECT_GE(internal, 20u);
  EXPECT_LE(internal, 30u);
}

TEST_P(NodeViewTest, LeafEntryRoundTrip) {
  NodeView v = MakeView();
  v.Format(0);
  const LeafEntry e{Rect(0.1, 0.2, 0.3, 0.4), 12345u};
  v.AppendLeafEntry(e);
  EXPECT_EQ(v.count(), 1u);
  const LeafEntry got = v.leaf_entry(0);
  EXPECT_EQ(got.rect, e.rect);
  EXPECT_EQ(got.oid, e.oid);
}

TEST_P(NodeViewTest, InternalEntryRoundTrip) {
  NodeView v = MakeView();
  v.Format(2);
  const InternalEntry e{Rect(0.5, 0.5, 0.9, 0.9), 4242u};
  v.AppendInternalEntry(e);
  const InternalEntry got = v.internal_entry(0);
  EXPECT_EQ(got.rect, e.rect);
  EXPECT_EQ(got.child, e.child);
}

TEST_P(NodeViewTest, FillToCapacity) {
  NodeView v = MakeView();
  v.Format(0);
  for (uint32_t i = 0; i < v.capacity(); ++i) {
    v.AppendLeafEntry(LeafEntry{Rect(0, 0, 0.01 * i, 0.01 * i), i});
  }
  EXPECT_TRUE(v.full());
  for (uint32_t i = 0; i < v.capacity(); ++i) {
    EXPECT_EQ(v.leaf_entry(i).oid, i);
  }
}

TEST_P(NodeViewTest, RemoveEntrySwapsLast) {
  NodeView v = MakeView();
  v.Format(0);
  for (uint32_t i = 0; i < 5; ++i) {
    v.AppendLeafEntry(LeafEntry{Rect::FromPoint(Point{0.1 * i, 0.1}), i});
  }
  v.RemoveEntry(1);
  EXPECT_EQ(v.count(), 4u);
  EXPECT_EQ(v.leaf_entry(1).oid, 4u);  // last swapped into slot 1
  // Remove the (new) last.
  v.RemoveEntry(3);
  EXPECT_EQ(v.count(), 3u);
  EXPECT_EQ(v.FindOidSlot(3), -1);
}

TEST_P(NodeViewTest, FindSlots) {
  NodeView v = MakeView();
  v.Format(0);
  v.AppendLeafEntry(LeafEntry{Rect::FromPoint(Point{0.1, 0.1}), 100});
  v.AppendLeafEntry(LeafEntry{Rect::FromPoint(Point{0.2, 0.2}), 200});
  EXPECT_EQ(v.FindOidSlot(200), 1);
  EXPECT_EQ(v.FindOidSlot(300), -1);

  std::vector<uint8_t> buf2(kPageSize, 0);
  NodeView iv(buf2.data(), kPageSize, parent_pointers());
  iv.Format(1);
  iv.AppendInternalEntry(InternalEntry{Rect(0, 0, 1, 1), 7});
  iv.AppendInternalEntry(InternalEntry{Rect(0, 0, 1, 1), 9});
  EXPECT_EQ(iv.FindChildSlot(9), 1);
  EXPECT_EQ(iv.FindChildSlot(8), -1);
}

TEST_P(NodeViewTest, ComputeMbrIsUnionOfEntries) {
  NodeView v = MakeView();
  v.Format(0);
  EXPECT_TRUE(v.ComputeMbr().IsEmpty());
  v.AppendLeafEntry(LeafEntry{Rect(0.1, 0.1, 0.2, 0.2), 1});
  v.AppendLeafEntry(LeafEntry{Rect(0.5, 0.0, 0.6, 0.9), 2});
  EXPECT_EQ(v.ComputeMbr(), Rect(0.1, 0.0, 0.6, 0.9));
}

TEST_P(NodeViewTest, EntryRectMutation) {
  NodeView v = MakeView();
  v.Format(0);
  v.AppendLeafEntry(LeafEntry{Rect::FromPoint(Point{0.1, 0.1}), 5});
  v.set_entry_rect(0, Rect::FromPoint(Point{0.9, 0.9}));
  EXPECT_EQ(v.leaf_entry(0).rect, Rect::FromPoint(Point{0.9, 0.9}));
  EXPECT_EQ(v.leaf_entry(0).oid, 5u);  // payload untouched
}

TEST_P(NodeViewTest, MbrHeaderIndependentOfEntries) {
  NodeView v = MakeView();
  v.Format(0);
  v.AppendLeafEntry(LeafEntry{Rect(0.4, 0.4, 0.5, 0.5), 1});
  // Covering rect may be deliberately looser than the entry union.
  v.set_mbr(Rect(0.3, 0.3, 0.7, 0.7));
  EXPECT_EQ(v.mbr(), Rect(0.3, 0.3, 0.7, 0.7));
  EXPECT_EQ(v.ComputeMbr(), Rect(0.4, 0.4, 0.5, 0.5));
}

INSTANTIATE_TEST_SUITE_P(ParentPtr, NodeViewTest,
                         ::testing::Values(false, true));

}  // namespace
}  // namespace burtree
