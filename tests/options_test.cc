// Locks the default tuning values to the bold entries of the paper's
// Table 1 (and the conventions its §5 setup states). Benches rely on
// "default == paper" — a silent default change would invalidate every
// figure reproduction, so the defaults are pinned here.
#include <gtest/gtest.h>

#include "common/options.h"
#include "workload/generator.h"

namespace burtree {
namespace {

TEST(OptionsTest, TreeDefaultsMatchPaperSetup) {
  TreeOptions t;
  EXPECT_EQ(t.page_size, 1024u);  // §5: 1 KB pages for all experiments
  EXPECT_DOUBLE_EQ(t.min_fill_fraction, 0.4);
  EXPECT_EQ(t.split, SplitAlgorithm::kQuadratic);
  EXPECT_FALSE(t.parent_pointers);  // LBU opts in explicitly
  EXPECT_TRUE(t.reinsert_on_underflow);
  EXPECT_FALSE(t.forced_reinsert);
}

TEST(OptionsTest, GbuDefaultsMatchPaperTable1) {
  GbuOptions g;
  EXPECT_DOUBLE_EQ(g.epsilon, 0.003);
  EXPECT_DOUBLE_EQ(g.distance_threshold, 0.03);
  EXPECT_EQ(g.level_threshold, GbuOptions::kLevelThresholdMax);
  EXPECT_TRUE(g.piggyback);
  EXPECT_TRUE(g.summary_queries);
  EXPECT_TRUE(g.directional_extension);
}

TEST(OptionsTest, LbuDefaultsMatchPaperTable1) {
  LbuOptions l;
  EXPECT_DOUBLE_EQ(l.epsilon, 0.003);
}

TEST(OptionsTest, WorkloadDefaultsMatchPaperTable1) {
  WorkloadOptions w;
  EXPECT_EQ(w.distribution, Distribution::kUniform);
  EXPECT_DOUBLE_EQ(w.max_move_distance, 0.03);
  EXPECT_DOUBLE_EQ(w.query_max_dim, 0.1);
}

}  // namespace
}  // namespace burtree
