#include "cc/latch_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"

namespace burtree {
namespace {

TEST(LatchTableTest, StripeCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(LatchTable(1).num_stripes(), 1u);
  EXPECT_EQ(LatchTable(2).num_stripes(), 2u);
  EXPECT_EQ(LatchTable(3).num_stripes(), 4u);
  EXPECT_EQ(LatchTable(200).num_stripes(), 256u);
  EXPECT_EQ(LatchTable(0).num_stripes(), 1u);
}

TEST(LatchTableTest, StripeOfIsDeterministicAndInRange) {
  LatchTable table(64);
  for (PageId id = 0; id < 10000; ++id) {
    const size_t s = table.StripeOf(id);
    EXPECT_LT(s, table.num_stripes());
    EXPECT_EQ(s, table.StripeOf(id));
  }
}

TEST(LatchTableTest, SequentialIdsSpreadAcrossStripes) {
  LatchTable table(64);
  std::vector<int> hits(table.num_stripes(), 0);
  for (PageId id = 0; id < 6400; ++id) ++hits[table.StripeOf(id)];
  // Every stripe should see some traffic from sequential page ids.
  for (size_t s = 0; s < hits.size(); ++s) EXPECT_GT(hits[s], 0) << s;
}

TEST(PageLatchSetTest, ExclusiveSetDeduplicatesStripes) {
  LatchTable table(4);  // heavy collisions on purpose
  PageLatchSet set(&table);
  set.AcquireExclusive({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_LE(set.held_stripes(), 4u);
  for (PageId p = 1; p <= 8; ++p) EXPECT_TRUE(set.Covers(p));
  set.ReleaseAll();
  EXPECT_EQ(set.held_stripes(), 0u);
}

TEST(PageLatchSetTest, TryExtendOnCoveredPageSucceeds) {
  LatchTable table(256);
  PageLatchSet set(&table);
  set.AcquireExclusive({17});
  EXPECT_TRUE(set.TryExtendExclusive(17));
  // A page colliding onto the same stripe is already covered.
  PageId collider = 18;
  while (table.StripeOf(collider) != table.StripeOf(17)) ++collider;
  EXPECT_TRUE(set.Covers(collider));
  EXPECT_TRUE(set.TryExtendExclusive(collider));
}

TEST(PageLatchSetTest, TryExtendFailsAgainstForeignExclusive) {
  LatchTable table(256);
  PageLatchSet a(&table);
  a.AcquireExclusive({5});
  PageLatchSet b(&table);
  EXPECT_FALSE(b.TryExtendExclusive(5));
  a.ReleaseAll();
  EXPECT_TRUE(b.TryExtendExclusive(5));
}

TEST(PageLatchSetTest, SharedCouplingRefcountsCollidingPages) {
  LatchTable table(1);  // every page shares the single stripe
  PageLatchSet reader(&table);
  reader.AcquireShared(10);
  EXPECT_TRUE(reader.TryAcquireShared(11));
  EXPECT_TRUE(reader.TryAcquireShared(12));
  EXPECT_EQ(reader.held_stripes(), 1u);
  reader.ReleaseShared(11);
  reader.ReleaseShared(12);
  // Still held for page 10: a writer must not get in.
  PageLatchSet writer(&table);
  EXPECT_FALSE(writer.TryExtendExclusive(10));
  reader.ReleaseShared(10);
  EXPECT_EQ(reader.held_stripes(), 0u);
  EXPECT_TRUE(writer.TryExtendExclusive(10));
}

TEST(PageLatchSetTest, SharedReadersCoexistWritersExclude) {
  LatchTable table(256);
  PageLatchSet r1(&table), r2(&table);
  r1.AcquireShared(42);
  EXPECT_TRUE(r2.TryAcquireShared(42));
  PageLatchSet w(&table);
  EXPECT_FALSE(w.TryExtendExclusive(42));
  r1.ReleaseAll();
  r2.ReleaseAll();
  EXPECT_TRUE(w.TryExtendExclusive(42));
}

TEST(PageLatchSetTest, DestructorReleasesHeldLatches) {
  LatchTable table(256);
  {
    PageLatchSet set(&table);
    set.AcquireExclusive({7, 8, 9});
  }
  PageLatchSet after(&table);
  EXPECT_TRUE(after.TryExtendExclusive(7));
  EXPECT_TRUE(after.TryExtendExclusive(8));
  EXPECT_TRUE(after.TryExtendExclusive(9));
}

TEST(PageLatchSetTest, ExclusiveSetsSerializeCriticalSections) {
  LatchTable table(8);
  int unguarded = 0;  // mutated only under the page-10 latch
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kIters; ++i) {
        PageLatchSet set(&table);
        set.AcquireExclusive({10});
        ++unguarded;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(unguarded, kThreads * kIters);
}

// Writers locking random sorted sets while readers couple with try-locks:
// the protocol must neither deadlock nor corrupt the per-page counters.
TEST(PageLatchSetTest, MixedWorkloadNoDeadlockStress) {
  LatchTable table(16);
  constexpr int kPages = 64;
  std::vector<int> counters(kPages, 0);
  std::atomic<uint64_t> reads{0};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(900 + t);
      for (int i = 0; i < 3000; ++i) {
        if (t % 2 == 0) {
          // Writer: a planned pair plus one try-extended extra.
          const PageId a = static_cast<PageId>(rng.NextBelow(kPages));
          const PageId b = static_cast<PageId>(rng.NextBelow(kPages));
          PageLatchSet set(&table);
          set.AcquireExclusive({a, b});
          ++counters[a];
          ++counters[b];
          const PageId c = static_cast<PageId>(rng.NextBelow(kPages));
          if (set.TryExtendExclusive(c)) ++counters[c];
        } else {
          // Reader: couple parent -> child, retry on contention.
          const PageId p = static_cast<PageId>(rng.NextBelow(kPages));
          const PageId c = static_cast<PageId>(rng.NextBelow(kPages));
          PageLatchSet set(&table);
          set.AcquireShared(p);
          if (set.TryAcquireShared(c)) {
            reads.fetch_add(
                static_cast<uint64_t>(counters[p] + counters[c]),
                std::memory_order_relaxed);
            set.ReleaseShared(c);
          }
          set.ReleaseShared(p);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Completion without hanging is the deadlock-freedom assertion; the
  // counters being consistent (non-negative sums) sanity-checks the data.
  EXPECT_GE(reads.load(), 0u);
}

}  // namespace
}  // namespace burtree
