// Linearizability fuzz pack for the coupled latch mode's two read paths
// (S-latched and optimistic version-validated) across every update
// strategy, with forced re-insertion enabled so the coupled insert path
// exercises the eviction + reinsert-visibility-bracket machinery.
//
// Shape: seeded concurrent schedules of updates, inserts, and window
// queries; threads own disjoint oid ranges (both their preloaded objects
// and their freshly inserted ones), so the final logical state is
// determined by program order alone. Replaying each thread's recorded
// ops single-threaded on a twin fixture builds the reference; the
// concurrent index must answer a battery of windows with identical oid
// sets through BOTH read paths, conserve every object, and keep the oid
// index consistent. Mid-run, queries must simply never fail or observe
// a torn page (TSan + the bracket re-checks make a miss loud).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "cc/latch_table.h"
#include "concurrency_test_util.h"

namespace burtree {
namespace {

struct RecordedOp {
  bool is_insert;
  ObjectId oid;
  Point from;  // updates only
  Point to;    // target position (updates) or insert position
};

template <typename Fn>
Status RetryAborted(Fn op) {
  for (;;) {
    const Status st = op();
    if (st.code() != StatusCode::kAborted) return st;
    std::this_thread::yield();
  }
}

/// VersionLatchHooks over a private table — valid for quiesced scans.
class TableHooks final : public VersionLatchHooks {
 public:
  explicit TableHooks(LatchTable* table) : table_(table) {}
  bool TryBeginSnapshot(PageId page, uint64_t* v) override {
    return table_->TryBeginSnapshot(page, v);
  }
  void EndSnapshot(PageId page) override { table_->EndSnapshot(page); }
  bool Validate(PageId page, uint64_t v) override {
    return table_->ValidateVersion(page, v);
  }

 private:
  LatchTable* table_;
};

class LinearizabilityFuzzTest
    : public ::testing::TestWithParam<std::tuple<StrategyKind, ReadMode>> {
};

TEST_P(LinearizabilityFuzzTest, CoupledSchedulesMatchReferenceReplay) {
  const auto [kind, read_mode] = GetParam();
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 150;
  constexpr uint64_t kObjects = 600;
  constexpr uint64_t kInsertsPerThread = 30;
  constexpr uint64_t kSeeds[] = {11, 12, 13};

  uint64_t total_reinserts = 0;
  for (const uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ExperimentConfig cfg;
    cfg.strategy = kind;
    cfg.page_size = 512;  // moderate fanout: inserts split and evict
    cfg.forced_reinsert = true;
    cfg.workload.num_objects = kObjects;
    cfg.workload.seed = 2000 + seed;
    cfg.buffer_fraction = 0.2;
    WorkloadGenerator workload(cfg.workload);

    StrategyFixture fx = MakeFixture(cfg);
    ASSERT_TRUE(BuildIndex(cfg, workload, &fx).ok());

    ConcurrencyOptions copts;
    copts.latch_mode = LatchMode::kCoupled;
    copts.read_mode = read_mode;
    copts.io_latency_in_op = true;
    copts.io_latency_us = 15 + (seed % 4) * 45;  // per-seed delay injector
    ConcurrentIndex index(fx.system.get(), fx.strategy.get(),
                          fx.executor.get(), copts);

    std::vector<std::vector<RecordedOp>> recorded(kThreads);
    std::vector<std::thread> threads;
    std::atomic<bool> ok{true};
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t]() {
        Rng rng(seed * 1000 + static_cast<uint64_t>(t));
        const uint64_t lo = kObjects * t / kThreads;
        const uint64_t hi = kObjects * (t + 1) / kThreads;
        // Fresh oids for this thread's inserts, disjoint from every
        // range and contiguous across threads for the final audits.
        uint64_t next_insert =
            kObjects + kInsertsPerThread * static_cast<uint64_t>(t);
        const uint64_t insert_end =
            kObjects + kInsertsPerThread * static_cast<uint64_t>(t + 1);
        std::vector<Point> pos(
            workload.initial_positions().begin() + static_cast<long>(lo),
            workload.initial_positions().begin() + static_cast<long>(hi));
        for (int i = 0; i < kOpsPerThread; ++i) {
          const double dice = rng.NextDouble();
          if (dice < 0.2 && next_insert < insert_end) {
            const Point p{rng.NextDouble(), rng.NextDouble()};
            const ObjectId oid = next_insert++;
            if (!RetryAborted([&] { return index.Insert(oid, p); }).ok()) {
              ok = false;
              return;
            }
            recorded[t].push_back(RecordedOp{true, oid, p, p});
          } else if (dice < 0.75) {
            const uint64_t k = rng.NextBelow(hi - lo);
            const Point to =
                rng.NextBool(0.5)
                    ? Point{rng.NextDouble(), rng.NextDouble()}
                    : Point{std::min(1.0,
                                     pos[k].x + rng.NextDouble() * 0.01),
                            std::min(1.0,
                                     pos[k].y + rng.NextDouble() * 0.01)};
            if (!RetryAborted([&] { return index.Update(lo + k, pos[k], to); })
                     .ok()) {
              ok = false;
              return;
            }
            recorded[t].push_back(RecordedOp{false, lo + k, pos[k], to});
            pos[k] = to;
          } else {
            const Rect w = WorkloadGenerator::QueryWindowFrom(rng, 0.05);
            if (!RetryAborted([&] { return index.Query(w).status(); }).ok()) {
              ok = false;
              return;
            }
          }
        }
        // Drain the insert quota so the final oid space is contiguous
        // regardless of how the dice fell.
        while (next_insert < insert_end) {
          const Point p{rng.NextDouble(), rng.NextDouble()};
          const ObjectId oid = next_insert++;
          if (!RetryAborted([&] { return index.Insert(oid, p); }).ok()) {
            ok = false;
            return;
          }
          recorded[t].push_back(RecordedOp{true, oid, p, p});
        }
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_TRUE(ok.load());

    // Single-thread reference: replay each thread's ops in program order.
    StrategyFixture ref = MakeFixture(cfg);
    ASSERT_TRUE(BuildIndex(cfg, workload, &ref).ok());
    for (const auto& thread_ops : recorded) {
      for (const RecordedOp& op : thread_ops) {
        if (op.is_insert) {
          ASSERT_TRUE(ref.system->Insert(op.oid, op.to).ok());
        } else {
          ASSERT_TRUE(ref.strategy->Update(op.oid, op.from, op.to).ok());
        }
      }
    }

    // Equivalence through BOTH read paths: the plain executor descent
    // and the pruned optimistic protocol (quiesced, so a private latch
    // table serves the snapshots) must each produce the reference's oid
    // set for every window.
    LatchTable qtable(256);
    TableHooks hooks(&qtable);
    Rng qrng(seed * 31 + 7);
    for (int q = 0; q < 25; ++q) {
      const Rect w = WorkloadGenerator::QueryWindowFrom(qrng, 0.25);
      std::vector<ObjectId> got, got_opt, want;
      ASSERT_TRUE(fx.executor
                      ->Query(w, [&](ObjectId oid,
                                     const Rect&) { got.push_back(oid); })
                      .ok());
      ASSERT_TRUE(fx.executor
                      ->QueryOptimistic(
                          w, &hooks,
                          [&](ObjectId oid, const Rect&) {
                            got_opt.push_back(oid);
                          },
                          /*pruned=*/true)
                      .ok());
      ASSERT_TRUE(ref.executor
                      ->Query(w, [&](ObjectId oid,
                                     const Rect&) { want.push_back(oid); })
                      .ok());
      std::sort(got.begin(), got.end());
      std::sort(got_opt.begin(), got_opt.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << "window " << q;
      EXPECT_EQ(got_opt, want) << "window " << q << " (optimistic)";
    }

    const uint64_t total =
        kObjects + kInsertsPerThread * static_cast<uint64_t>(kThreads);
    EXPECT_TRUE(fx.system->tree().Validate().ok());
    EXPECT_EQ(testutil::FullSpaceCount(*fx.system), total);
    if (kind != StrategyKind::kTopDown) {
      testutil::ExpectOidIndexConsistent(*fx.system, total);
    }
    // Coupled mode never touches the tree-wide latch.
    EXPECT_EQ(index.latch_stats().escalated_updates, 0u);
    EXPECT_EQ(index.latch_stats().escalated_queries, 0u);
    if (read_mode == ReadMode::kOptimistic) {
      EXPECT_GT(index.latch_stats().optimistic_queries, 0u);
    }
    total_reinserts += index.latch_stats().coupled_reinserts;
  }
  // The inserts run with forced re-insertion enabled; across the seeds
  // the eviction + visibility-bracket machinery must actually fire (a
  // grid that never evicts would prove nothing about the bracket).
  EXPECT_GT(total_reinserts, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LinearizabilityFuzzTest,
    ::testing::Combine(::testing::Values(StrategyKind::kTopDown,
                                         StrategyKind::kLocalizedBottomUp,
                                         StrategyKind::kGeneralizedBottomUp),
                       ::testing::Values(ReadMode::kLatched,
                                         ReadMode::kOptimistic)),
    [](const auto& info) {
      return std::string(StrategyName(std::get<0>(info.param))) + "_" +
             ReadModeName(std::get<1>(info.param));
    });

}  // namespace
}  // namespace burtree
