// Summary-snapshot staleness pack: the pruned, epoch-validated
// optimistic query plan must stay correct while an 8-thread insert storm
// splits leaves and parents out from under it, and pruning must be
// doing real work (measurably fewer page reads than a full descent).
//
// The storm inserts only into x,y >= 0.6 while every probe window lies
// in x,y <= 0.4, so each probe's ground-truth oid set is constant for
// the whole run: any deviation mid-storm means a stale plan slipped
// past the epoch validation (or a torn snapshot slipped past the
// version stamps). Writers and readers share one LatchTable, exactly
// like the cc layer wires it.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "cc/latch_table.h"
#include "concurrency_test_util.h"

namespace burtree {
namespace {

class TableVersionHooks final : public VersionLatchHooks {
 public:
  explicit TableVersionHooks(LatchTable* table) : table_(table) {}
  bool TryBeginSnapshot(PageId page, uint64_t* v) override {
    return table_->TryBeginSnapshot(page, v);
  }
  void EndSnapshot(PageId page) override { table_->EndSnapshot(page); }
  bool Validate(PageId page, uint64_t v) override {
    return table_->ValidateVersion(page, v);
  }

 private:
  LatchTable* table_;
};

/// ExclusiveLatchHooks over a PageLatchSet, as the cc layer's coupled
/// insert wires it (try-extension for everything past the root).
class WriterHooks final : public ExclusiveLatchHooks {
 public:
  explicit WriterHooks(PageLatchSet* set) : set_(set) {}
  void AcquireExclusive(PageId page) override {
    set_->AcquireExclusive(page);
  }
  bool TryAcquireExclusive(PageId page) override {
    return set_->TryExtendExclusive(page);
  }
  void ReleaseExclusive(PageId page) override {
    set_->ReleaseExclusive(page);
  }

 private:
  PageLatchSet* set_;
};

TEST(SummarySnapshotTest, PrunedOptimisticStaysCorrectUnderSplitStorm) {
  constexpr uint64_t kObjects = 3000;
  constexpr int kWriters = 8;
  constexpr uint64_t kInsertsPerWriter = 250;

  ExperimentConfig cfg;
  cfg.strategy = StrategyKind::kGeneralizedBottomUp;
  cfg.page_size = 512;
  cfg.buffer_fraction = 0.01;  // tiny pool: page reads stay visible
  cfg.workload.num_objects = kObjects;
  cfg.workload.seed = 77;
  WorkloadGenerator workload(cfg.workload);
  StrategyFixture fx = MakeFixture(cfg);
  ASSERT_TRUE(BuildIndex(cfg, workload, &fx).ok());
  RTree& tree = fx.system->tree();
  ASSERT_GE(tree.root_level(), 2) << "need levels for pruning to skip";

  const std::vector<Rect> probes{
      Rect(0.02, 0.02, 0.22, 0.22), Rect(0.15, 0.10, 0.35, 0.30),
      Rect(0.05, 0.20, 0.25, 0.40)};
  std::vector<std::vector<ObjectId>> truth(probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_TRUE(fx.executor
                    ->Query(probes[i],
                            [&](ObjectId oid, const Rect&) {
                              truth[i].push_back(oid);
                            })
                    .ok());
    std::sort(truth[i].begin(), truth[i].end());
    ASSERT_FALSE(truth[i].empty());
  }
  const uint64_t splits_before = tree.stats().leaf_splits;

  LatchTable table;  // shared by writers and optimistic readers
  std::atomic<bool> storm_done{false};
  std::atomic<bool> writer_failed{false};
  std::atomic<bool> mismatch{false};
  std::atomic<uint64_t> consistent_reads{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(900 + static_cast<uint64_t>(t));
      for (uint64_t j = 0; j < kInsertsPerWriter; ++j) {
        const ObjectId oid = 100000 + kInsertsPerWriter *
                                          static_cast<uint64_t>(t) + j;
        // Far from every probe window: ground truth stays frozen.
        const Rect r = IndexSystem::PointRect(
            Point{0.6 + rng.NextDouble() * 0.35,
                  0.6 + rng.NextDouble() * 0.35});
        for (;;) {
          PageLatchSet latches(&table);
          WriterHooks hooks(&latches);
          const Status st = tree.InsertCoupled(oid, r, &hooks);
          if (st.ok()) break;
          if (st.code() != StatusCode::kLatchContention) {
            writer_failed = true;
            return;
          }
          latches.ReleaseAll();
          std::this_thread::yield();
        }
      }
    });
  }
  // Two optimistic readers hammer the pruned plan throughout the storm.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t]() {
      TableVersionHooks hooks(&table);
      size_t i = static_cast<size_t>(t);
      while (!storm_done.load(std::memory_order_acquire)) {
        const size_t p = i++ % probes.size();
        std::vector<ObjectId> got;
        const auto result = fx.executor->QueryOptimistic(
            probes[p], &hooks,
            [&](ObjectId oid, const Rect&) { got.push_back(oid); },
            /*pruned=*/true);
        if (!result.ok()) {
          // Stale plan or starved snapshots: legal, retry.
          continue;
        }
        std::sort(got.begin(), got.end());
        if (got != truth[p]) mismatch = true;
        consistent_reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[static_cast<size_t>(t)].join();
  storm_done = true;
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  ASSERT_FALSE(writer_failed.load());
  EXPECT_FALSE(mismatch.load()) << "pruned optimistic read saw a stale set";
  EXPECT_GT(consistent_reads.load(), 0u);
  // The storm must actually have been a split storm.
  EXPECT_GT(tree.stats().leaf_splits, splits_before);
  ASSERT_TRUE(tree.Validate().ok());
  EXPECT_EQ(testutil::FullSpaceCount(*fx.system),
            kObjects + static_cast<uint64_t>(kWriters) * kInsertsPerWriter);

  // Quiesced: pruned and unpruned scans agree on oid sets, and pruning
  // measurably reduces page reads (the whole point of carrying the
  // summary snapshot into the concurrent read paths).
  TableVersionHooks hooks(&table);
  Rng qrng(4242);
  uint64_t pruned_io = 0, full_io = 0;
  for (int q = 0; q < 20; ++q) {
    const Rect w = WorkloadGenerator::QueryWindowFrom(qrng, 0.2);
    std::vector<ObjectId> full, pruned;
    PageStore::ResetThreadIo();
    ASSERT_TRUE(tree.Query(w, [&](ObjectId oid, const Rect&) {
                      full.push_back(oid);
                    }).ok());
    full_io += PageStore::thread_io();
    PageStore::ResetThreadIo();
    ASSERT_TRUE(fx.executor
                    ->QueryOptimistic(
                        w, &hooks,
                        [&](ObjectId oid, const Rect&) {
                          pruned.push_back(oid);
                        },
                        /*pruned=*/true)
                    .ok());
    pruned_io += PageStore::thread_io();
    std::sort(full.begin(), full.end());
    std::sort(pruned.begin(), pruned.end());
    EXPECT_EQ(pruned, full) << "window " << q;
  }
  EXPECT_LT(pruned_io, full_io)
      << "summary pruning did not reduce query page reads";
}

}  // namespace
}  // namespace burtree
