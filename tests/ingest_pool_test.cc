// IngestPool torture: many client threads hammer the per-shard MPSC
// queues with blocking and pipelined submissions — moves plus inserts of
// brand-new oids — while 8 workers group-execute batches against a
// coupled-mode GBU index with forced re-insertion on (the SMO-heaviest
// configuration). The pool must preserve per-oid submission order, never
// lose a completion, and leave a valid tree. Sizes stay TSan-friendly.
#include "ingest/ingest_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "concurrency_test_util.h"
#include "harness/experiment.h"
#include "ingest/mpsc_queue.h"

namespace burtree {
namespace {

TEST(ParseIngestSpecTest, AcceptsTheDocumentedForms) {
  IngestOptions opt;
  EXPECT_TRUE(ParseIngestSpec("", &opt));
  EXPECT_EQ(opt.workers, 0u);  // empty spec = disabled
  EXPECT_TRUE(ParseIngestSpec("4", &opt));
  EXPECT_EQ(opt.workers, 4u);
  EXPECT_TRUE(ParseIngestSpec("workers=8,batch=128", &opt));
  EXPECT_EQ(opt.workers, 8u);
  EXPECT_EQ(opt.max_batch, 128u);
  EXPECT_FALSE(ParseIngestSpec("workers=x", &opt));
  EXPECT_FALSE(ParseIngestSpec("batch=0", &opt));
  EXPECT_FALSE(ParseIngestSpec("bogus=1", &opt));
}

TEST(ParseIngestSpecTest, RejectsSignsWhitespaceAndOverflow) {
  // strtoull used to wrap "workers=-1" to 4294967295 worker threads and
  // quietly took "+8", " 8", and "0x8"; strict parsing rejects them all
  // without touching the output.
  IngestOptions opt;
  opt.workers = 7;
  EXPECT_FALSE(ParseIngestSpec("workers=-1", &opt));
  EXPECT_FALSE(ParseIngestSpec("-1", &opt));
  EXPECT_FALSE(ParseIngestSpec("workers=+8", &opt));
  EXPECT_FALSE(ParseIngestSpec("workers= 8", &opt));
  EXPECT_FALSE(ParseIngestSpec("workers=0x8", &opt));
  EXPECT_FALSE(ParseIngestSpec("workers=8 ", &opt));
  EXPECT_FALSE(ParseIngestSpec("workers=99999999999999999999", &opt));
  EXPECT_FALSE(ParseIngestSpec("workers=5000", &opt));  // > sanity cap
  EXPECT_FALSE(ParseIngestSpec("batch=2000000", &opt));
  EXPECT_EQ(opt.workers, 7u);  // rejected parses leave `out` untouched
  IngestOptions rt;
  rt.workers = 3;
  rt.max_batch = 32;
  IngestOptions parsed;
  EXPECT_TRUE(ParseIngestSpec(IngestSpecString(rt), &parsed));
  EXPECT_EQ(parsed.workers, rt.workers);
  EXPECT_EQ(parsed.max_batch, rt.max_batch);
}

TEST(MpscQueueTest, DrainsInOrderAndClosesCleanly) {
  MpscQueue q;
  for (int i = 0; i < 10; ++i) {
    PendingOp op;
    op.kind = PendingOp::Kind::kUpdate;
    op.oid = static_cast<ObjectId>(i);
    ASSERT_TRUE(q.Push(std::move(op)));
  }
  std::vector<PendingOp> out;
  EXPECT_EQ(q.Drain(&out, 4), 4u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].oid, 0u);
  EXPECT_EQ(out[3].oid, 3u);
  out.clear();
  EXPECT_EQ(q.Drain(&out, 100), 6u);
  EXPECT_EQ(out[0].oid, 4u);
  q.Close();
  PendingOp late;
  EXPECT_FALSE(q.Push(std::move(late)));
  out.clear();
  EXPECT_EQ(q.Drain(&out, 100), 0u);  // closed + empty
}

TEST(MpscQueueTest, DrainBlocksUntilPushArrives) {
  MpscQueue q;
  std::thread producer([&q]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    PendingOp op;
    op.oid = 42;
    q.Push(std::move(op));
  });
  std::vector<PendingOp> out;
  EXPECT_EQ(q.Drain(&out, 8), 1u);  // blocked until the push landed
  EXPECT_EQ(out[0].oid, 42u);
  producer.join();
}

TEST(UpdateHandleTest, EmptyHandleIsAnError) {
  UpdateHandle h;
  EXPECT_EQ(h.Wait().code(), StatusCode::kInvalidArgument);
}

struct PoolWorld {
  explicit PoolWorld(uint64_t objects, uint32_t workers,
                     LatchMode latch_mode = LatchMode::kCoupled) {
    cfg.strategy = StrategyKind::kGeneralizedBottomUp;
    cfg.workload.num_objects = objects;
    cfg.workload.seed = 83;
    cfg.forced_reinsert = true;  // SMO-heaviest configuration
    workload = std::make_unique<WorkloadGenerator>(cfg.workload);
    fx = MakeFixture(cfg);
    BURTREE_CHECK(BuildIndex(cfg, *workload, &fx).ok());
    ConcurrencyOptions copts;
    copts.io_latency_us = 0;
    copts.latch_mode = latch_mode;
    index = std::make_unique<ConcurrentIndex>(fx.system.get(),
                                              fx.strategy.get(),
                                              fx.executor.get(), copts);
    IngestOptions iopts;
    iopts.workers = workers;
    iopts.max_batch = 32;
    pool = std::make_unique<IngestPool>(index.get(), iopts);
  }
  ExperimentConfig cfg;
  std::unique_ptr<WorkloadGenerator> workload;
  StrategyFixture fx;
  std::unique_ptr<ConcurrentIndex> index;
  std::unique_ptr<IngestPool> pool;
};

TEST(IngestPoolTest, EightWorkerTortureWithInserts) {
  constexpr uint64_t kObjects = 2000;
  constexpr int kClients = 8;
  constexpr int kOpsPerClient = 150;
  constexpr int kInsertsPerClient = 25;
  PoolWorld w(kObjects, /*workers=*/8);

  std::vector<std::thread> clients;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t]() {
      Rng rng(500 + t);
      const uint64_t lo = kObjects * t / kClients;
      const uint64_t hi = kObjects * (t + 1) / kClients;
      std::vector<Point> pos(
          w.workload->initial_positions().begin() + static_cast<long>(lo),
          w.workload->initial_positions().begin() + static_cast<long>(hi));
      // Each client owns a disjoint range of brand-new oids too, so an
      // insert and later updates of it can land in the same batch.
      ObjectId next_new = kObjects + static_cast<ObjectId>(t) * 1000;
      std::vector<Point> new_pos;
      std::vector<UpdateHandle> pipeline;
      for (int i = 0; i < kOpsPerClient; ++i) {
        if (i % (kOpsPerClient / kInsertsPerClient) == 0) {
          const Point p{rng.NextDouble(), rng.NextDouble()};
          if (!w.pool->Insert(next_new, p).ok()) {
            ok = false;
            return;
          }
          new_pos.push_back(p);
          ++next_new;
        }
        const bool move_new = !new_pos.empty() && rng.NextBool(0.3);
        ObjectId oid;
        Point from;
        const Point to{rng.NextDouble(), rng.NextDouble()};
        if (move_new) {
          const uint64_t k = rng.NextBelow(new_pos.size());
          oid = kObjects + static_cast<ObjectId>(t) * 1000 + k;
          from = new_pos[k];
          new_pos[k] = to;
        } else {
          const uint64_t k = rng.NextBelow(hi - lo);
          oid = lo + k;
          from = pos[k];
          pos[k] = to;
        }
        // Mix blocking submits with pipelined handles (wait every 4th):
        // per-oid order is preserved by the queues even when the client
        // races ahead of completion.
        pipeline.push_back(w.pool->SubmitUpdate(oid, from, to));
        if (pipeline.size() >= 4) {
          for (auto& h : pipeline) {
            if (!h.Wait().ok()) {
              ok = false;
              return;
            }
          }
          pipeline.clear();
        }
      }
      for (auto& h : pipeline) {
        if (!h.Wait().ok()) {
          ok = false;
          return;
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  ASSERT_TRUE(ok.load());
  w.pool->Shutdown();

  const IngestStats stats = w.pool->stats();
  EXPECT_EQ(stats.submitted,
            static_cast<uint64_t>(kClients) *
                (kOpsPerClient + kInsertsPerClient));
  EXPECT_EQ(stats.batched_ops, stats.submitted);
  EXPECT_GT(stats.batches, 0u);

  EXPECT_TRUE(w.fx.system->tree().Validate().ok());
  EXPECT_EQ(testutil::FullSpaceCount(*w.fx.system),
            kObjects + static_cast<uint64_t>(kClients) * kInsertsPerClient);
  // Every surviving object's hash entry points at its physical leaf.
  std::vector<ObjectId> oids;
  for (ObjectId oid = 0; oid < kObjects; ++oid) oids.push_back(oid);
  for (int t = 0; t < kClients; ++t) {
    for (int i = 0; i < kInsertsPerClient; ++i) {
      oids.push_back(kObjects + static_cast<ObjectId>(t) * 1000 +
                     static_cast<ObjectId>(i));
    }
  }
  testutil::ExpectOidIndexConsistent(w.fx.system->tree(),
                                     *w.fx.system->oid_index(), oids);
}

TEST(IngestPoolTest, ShutdownCompletesInFlightWork) {
  PoolWorld w(500, /*workers=*/2, LatchMode::kGlobal);
  const auto& pos = w.workload->initial_positions();
  std::vector<UpdateHandle> handles;
  Rng rng(7);
  std::vector<Point> cur(pos.begin(), pos.end());
  for (int i = 0; i < 200; ++i) {
    const ObjectId oid = rng.NextBelow(cur.size());
    const Point to{rng.NextDouble(), rng.NextDouble()};
    handles.push_back(w.pool->SubmitUpdate(oid, cur[oid], to));
    cur[oid] = to;
  }
  w.pool->Shutdown();  // must drain, not drop
  for (auto& h : handles) EXPECT_TRUE(h.Wait().ok());
  EXPECT_TRUE(w.fx.system->tree().Validate().ok());
  EXPECT_EQ(testutil::FullSpaceCount(*w.fx.system), 500u);
  // Second Shutdown is an idempotent no-op.
  w.pool->Shutdown();
}

// Regression: Shutdown used a plain bool check-then-set, so two racing
// callers could both reach join() — undefined behavior on std::thread.
// Now an exchange picks one closer and the mutex parks the loser until
// the winner's joins finish; both callers hammering it concurrently
// must come back clean with the workers gone.
TEST(IngestPoolTest, ConcurrentShutdownCallersBothReturnSafely) {
  for (int round = 0; round < 10; ++round) {
    PoolWorld w(300, /*workers=*/4, LatchMode::kGlobal);
    std::vector<UpdateHandle> handles;
    const auto& pos = w.workload->initial_positions();
    for (int i = 0; i < 50; ++i) {
      const ObjectId oid = static_cast<ObjectId>(i % 300);
      handles.push_back(
          w.pool->SubmitUpdate(oid, pos[oid], Point{0.5, 0.5}));
    }
    std::thread a([&] { w.pool->Shutdown(); });
    std::thread b([&] { w.pool->Shutdown(); });
    a.join();
    b.join();
    // Either caller returning means the drain finished: every handle
    // completed and no worker is left to lose.
    for (auto& h : handles) EXPECT_TRUE(h.Wait().ok());
    EXPECT_TRUE(w.fx.system->tree().Validate().ok());
  }
}

}  // namespace
}  // namespace burtree
