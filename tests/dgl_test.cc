#include "cc/dgl.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"

namespace burtree {
namespace {

TEST(SpatialGranulesTest, CellOfMapsIntoGrid) {
  SpatialGranules g(3);  // 8x8
  EXPECT_EQ(g.grid_size(), 8u);
  EXPECT_EQ(g.CellOf(Point{0.0, 0.0}), 0u);
  EXPECT_EQ(g.CellOf(Point{0.99, 0.0}), 7u);
  EXPECT_EQ(g.CellOf(Point{0.0, 0.99}), 56u);
  EXPECT_EQ(g.CellOf(Point{0.99, 0.99}), 63u);
  // Out-of-range coordinates clamp to border cells.
  EXPECT_EQ(g.CellOf(Point{-1.0, 0.0}), 0u);
  EXPECT_EQ(g.CellOf(Point{2.0, 2.0}), 63u);
}

TEST(SpatialGranulesTest, CellsOfWindowCoversAndIsSorted) {
  SpatialGranules g(3);
  const Rect w(0.1, 0.1, 0.4, 0.3);  // cells x 0..3, y 0..2
  auto cells = g.CellsOf(w);
  EXPECT_EQ(cells.size(), 4u * 3u);
  EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end()));
  // The cell of every corner is included.
  for (const Point& p : {Point{0.1, 0.1}, Point{0.4, 0.1}, Point{0.1, 0.3},
                         Point{0.4, 0.3}}) {
    EXPECT_TRUE(std::binary_search(cells.begin(), cells.end(), g.CellOf(p)));
  }
}

TEST(SpatialGranulesTest, EmptyWindowHasNoCells) {
  SpatialGranules g(3);
  EXPECT_TRUE(g.CellsOf(Rect::Empty()).empty());
}

TEST(DglProtocolTest, UpdateLocksBothCellsExclusive) {
  LockManager lm;
  SpatialGranules g(4);
  ASSERT_TRUE(AcquireUpdateLocks(&lm, g, 1, Point{0.1, 0.1},
                                 Point{0.9, 0.9})
                  .ok());
  // root intent + two cells
  EXPECT_EQ(lm.HeldCount(1), 3u);
  // A query over the destination cell must block (timeout-abort here).
  LockManagerOptions fast;
  fast.timeout_ms = 30;
  LockManager lm2(fast);
  ASSERT_TRUE(AcquireUpdateLocks(&lm2, g, 1, Point{0.1, 0.1},
                                 Point{0.9, 0.9})
                  .ok());
  EXPECT_FALSE(
      AcquireQueryLocks(&lm2, g, 2, Rect(0.85, 0.85, 0.95, 0.95)).ok());
}

TEST(DglProtocolTest, SameCellUpdateLocksOnce) {
  LockManager lm;
  SpatialGranules g(4);
  ASSERT_TRUE(AcquireUpdateLocks(&lm, g, 1, Point{0.51, 0.51},
                                 Point{0.52, 0.52})
                  .ok());
  EXPECT_EQ(lm.HeldCount(1), 2u);  // root + one cell
}

TEST(DglProtocolTest, DisjointRegionsDoNotConflict) {
  LockManager lm;
  SpatialGranules g(4);
  ASSERT_TRUE(AcquireUpdateLocks(&lm, g, 1, Point{0.1, 0.1},
                                 Point{0.15, 0.15})
                  .ok());
  ASSERT_TRUE(
      AcquireQueryLocks(&lm, g, 2, Rect(0.7, 0.7, 0.9, 0.9)).ok());
  ASSERT_TRUE(AcquireUpdateLocks(&lm, g, 3, Point{0.4, 0.4},
                                 Point{0.45, 0.45})
                  .ok());
}

TEST(DglProtocolTest, QueriesShareCells) {
  LockManager lm;
  SpatialGranules g(4);
  ASSERT_TRUE(AcquireQueryLocks(&lm, g, 1, Rect(0.2, 0.2, 0.6, 0.6)).ok());
  ASSERT_TRUE(AcquireQueryLocks(&lm, g, 2, Rect(0.2, 0.2, 0.6, 0.6)).ok());
}

TEST(DglProtocolTest, PhantomProtection) {
  // A query holding its window's cells blocks any update that would move
  // an object INTO the window — DGL's phantom-protection property.
  LockManagerOptions fast;
  fast.timeout_ms = 30;
  LockManager lm(fast);
  SpatialGranules g(4);
  ASSERT_TRUE(AcquireQueryLocks(&lm, g, 1, Rect(0.4, 0.4, 0.6, 0.6)).ok());
  EXPECT_FALSE(AcquireUpdateLocks(&lm, g, 2, Point{0.9, 0.9},
                                  Point{0.5, 0.5})
                   .ok());
  // ... but an update wholly outside proceeds.
  EXPECT_TRUE(AcquireUpdateLocks(&lm, g, 3, Point{0.9, 0.9},
                                 Point{0.95, 0.95})
                  .ok());
}

TEST(DglProtocolTest, InsertLocksDestinationCell) {
  LockManager lm;
  SpatialGranules g(4);
  ASSERT_TRUE(AcquireInsertLocks(&lm, g, 1, Point{0.3, 0.3}).ok());
  EXPECT_EQ(lm.HeldCount(1), 2u);  // root intent + the destination cell
  // Phantom protection: a query over the cell must block.
  LockManagerOptions fast;
  fast.timeout_ms = 30;
  LockManager lm2(fast);
  ASSERT_TRUE(AcquireInsertLocks(&lm2, g, 1, Point{0.3, 0.3}).ok());
  EXPECT_FALSE(
      AcquireQueryLocks(&lm2, g, 2, Rect(0.25, 0.25, 0.35, 0.35)).ok());
}

// ---------------------------------------------------------------------------
// Striped lock-manager tests: the single global mutex is gone; granules
// hash across per-bucket mutex/cv/map triples.
// ---------------------------------------------------------------------------

TEST(LockManagerStripingTest, GranulesSpreadAcrossBuckets) {
  LockManagerOptions opts;
  opts.buckets = 64;
  LockManager lm(opts);
  EXPECT_EQ(lm.bucket_count(), 64u);
  std::vector<int> hits(lm.bucket_count(), 0);
  for (uint64_t g = 0; g < 4096; ++g) ++hits[lm.BucketOf(g)];
  // Dense grid granules must not collapse onto few buckets.
  int used = 0;
  for (int h : hits) used += h > 0 ? 1 : 0;
  EXPECT_EQ(used, 64);
}

TEST(LockManagerStripingTest, NoLostLocksAcrossBuckets) {
  // 8 threads, each acquiring a txn-private granule set spanning many
  // buckets, verifying the held-set bookkeeping and that ReleaseAll
  // frees every bucket (a fresh X acquisition succeeds everywhere).
  LockManager lm;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerTxn = 64;
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int round = 0; round < 50; ++round) {
        const uint64_t txn = 1 + static_cast<uint64_t>(t) * 1000 + round;
        for (uint64_t i = 0; i < kPerTxn; ++i) {
          // Granules disjoint per thread: no conflicts, pure bookkeeping.
          const uint64_t granule = static_cast<uint64_t>(t) * 100000 + i;
          if (!lm.Acquire(txn, granule, LockMode::kX).ok()) {
            ok = false;
            return;
          }
        }
        if (lm.HeldCount(txn) != kPerTxn) {
          ok = false;
          return;
        }
        lm.ReleaseAll(txn);
        if (lm.HeldCount(txn) != 0) {
          ok = false;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(ok.load());
  // Every granule is free again: a single txn can X-lock all of them.
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerTxn; ++i) {
      EXPECT_TRUE(
          lm.Acquire(999999, static_cast<uint64_t>(t) * 100000 + i,
                     LockMode::kX)
              .ok());
    }
  }
  lm.ReleaseAll(999999);
  EXPECT_EQ(lm.stats().timeouts, 0u);
}

TEST(LockManagerStripingTest, DeterministicOrderPreventsDeadlock) {
  // Threads repeatedly take overlapping DGL-style lock sets (root intent
  // first, then cells ascending). The sets conflict heavily and span
  // many buckets; the deterministic order must keep every acquisition
  // free of deadlock — a timeout here is the failure signal.
  LockManagerOptions opts;
  opts.timeout_ms = 10000;
  LockManager lm(opts);
  SpatialGranules g(5);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(500 + t);
      for (int i = 0; i < 200 && ok; ++i) {
        const uint64_t txn = 1 + static_cast<uint64_t>(t) * 10000 + i;
        Status s;
        if (i % 2 == 0) {
          // Overlapping windows around the center: shared cells.
          const double x = 0.4 + rng.NextDouble() * 0.1;
          const double y = 0.4 + rng.NextDouble() * 0.1;
          s = AcquireQueryLocks(&lm, g, txn,
                                Rect(x, y, x + 0.1, y + 0.1));
        } else {
          s = AcquireUpdateLocks(
              &lm, g, txn,
              Point{0.45 + rng.NextDouble() * 0.1,
                    0.45 + rng.NextDouble() * 0.1},
              Point{rng.NextDouble(), rng.NextDouble()});
        }
        if (!s.ok()) ok = false;
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(lm.stats().timeouts, 0u);
  EXPECT_EQ(lm.stats().aborts, 0u);
}

}  // namespace
}  // namespace burtree
