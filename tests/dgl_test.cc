#include "cc/dgl.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace burtree {
namespace {

TEST(SpatialGranulesTest, CellOfMapsIntoGrid) {
  SpatialGranules g(3);  // 8x8
  EXPECT_EQ(g.grid_size(), 8u);
  EXPECT_EQ(g.CellOf(Point{0.0, 0.0}), 0u);
  EXPECT_EQ(g.CellOf(Point{0.99, 0.0}), 7u);
  EXPECT_EQ(g.CellOf(Point{0.0, 0.99}), 56u);
  EXPECT_EQ(g.CellOf(Point{0.99, 0.99}), 63u);
  // Out-of-range coordinates clamp to border cells.
  EXPECT_EQ(g.CellOf(Point{-1.0, 0.0}), 0u);
  EXPECT_EQ(g.CellOf(Point{2.0, 2.0}), 63u);
}

TEST(SpatialGranulesTest, CellsOfWindowCoversAndIsSorted) {
  SpatialGranules g(3);
  const Rect w(0.1, 0.1, 0.4, 0.3);  // cells x 0..3, y 0..2
  auto cells = g.CellsOf(w);
  EXPECT_EQ(cells.size(), 4u * 3u);
  EXPECT_TRUE(std::is_sorted(cells.begin(), cells.end()));
  // The cell of every corner is included.
  for (const Point& p : {Point{0.1, 0.1}, Point{0.4, 0.1}, Point{0.1, 0.3},
                         Point{0.4, 0.3}}) {
    EXPECT_TRUE(std::binary_search(cells.begin(), cells.end(), g.CellOf(p)));
  }
}

TEST(SpatialGranulesTest, EmptyWindowHasNoCells) {
  SpatialGranules g(3);
  EXPECT_TRUE(g.CellsOf(Rect::Empty()).empty());
}

TEST(DglProtocolTest, UpdateLocksBothCellsExclusive) {
  LockManager lm;
  SpatialGranules g(4);
  ASSERT_TRUE(AcquireUpdateLocks(&lm, g, 1, Point{0.1, 0.1},
                                 Point{0.9, 0.9})
                  .ok());
  // root intent + two cells
  EXPECT_EQ(lm.HeldCount(1), 3u);
  // A query over the destination cell must block (timeout-abort here).
  LockManagerOptions fast;
  fast.timeout_ms = 30;
  LockManager lm2(fast);
  ASSERT_TRUE(AcquireUpdateLocks(&lm2, g, 1, Point{0.1, 0.1},
                                 Point{0.9, 0.9})
                  .ok());
  EXPECT_FALSE(
      AcquireQueryLocks(&lm2, g, 2, Rect(0.85, 0.85, 0.95, 0.95)).ok());
}

TEST(DglProtocolTest, SameCellUpdateLocksOnce) {
  LockManager lm;
  SpatialGranules g(4);
  ASSERT_TRUE(AcquireUpdateLocks(&lm, g, 1, Point{0.51, 0.51},
                                 Point{0.52, 0.52})
                  .ok());
  EXPECT_EQ(lm.HeldCount(1), 2u);  // root + one cell
}

TEST(DglProtocolTest, DisjointRegionsDoNotConflict) {
  LockManager lm;
  SpatialGranules g(4);
  ASSERT_TRUE(AcquireUpdateLocks(&lm, g, 1, Point{0.1, 0.1},
                                 Point{0.15, 0.15})
                  .ok());
  ASSERT_TRUE(
      AcquireQueryLocks(&lm, g, 2, Rect(0.7, 0.7, 0.9, 0.9)).ok());
  ASSERT_TRUE(AcquireUpdateLocks(&lm, g, 3, Point{0.4, 0.4},
                                 Point{0.45, 0.45})
                  .ok());
}

TEST(DglProtocolTest, QueriesShareCells) {
  LockManager lm;
  SpatialGranules g(4);
  ASSERT_TRUE(AcquireQueryLocks(&lm, g, 1, Rect(0.2, 0.2, 0.6, 0.6)).ok());
  ASSERT_TRUE(AcquireQueryLocks(&lm, g, 2, Rect(0.2, 0.2, 0.6, 0.6)).ok());
}

TEST(DglProtocolTest, PhantomProtection) {
  // A query holding its window's cells blocks any update that would move
  // an object INTO the window — DGL's phantom-protection property.
  LockManagerOptions fast;
  fast.timeout_ms = 30;
  LockManager lm(fast);
  SpatialGranules g(4);
  ASSERT_TRUE(AcquireQueryLocks(&lm, g, 1, Rect(0.4, 0.4, 0.6, 0.6)).ok());
  EXPECT_FALSE(AcquireUpdateLocks(&lm, g, 2, Point{0.9, 0.9},
                                  Point{0.5, 0.5})
                   .ok());
  // ... but an update wholly outside proceeds.
  EXPECT_TRUE(AcquireUpdateLocks(&lm, g, 3, Point{0.9, 0.9},
                                 Point{0.95, 0.95})
                  .ok());
}

}  // namespace
}  // namespace burtree
