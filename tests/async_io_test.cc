// The raw-I/O resume loops and the async engines, driven through the
// fault-injection hook table (storage/async_io.h): bounded partial
// transfers and injected EINTR must be invisible to callers, real
// errors must surface, and every submitted unit's completion must fire
// exactly once — including through engine teardown.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "storage/async_io.h"

namespace burtree {
namespace {

// A scratch file under the test tempdir, closed and unlinked on exit.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name) {
    path_ = ::testing::TempDir() + "/" + name;
    fd_ = ::open(path_.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
    EXPECT_GE(fd_, 0) << std::strerror(errno);
  }
  ~ScratchFile() {
    if (fd_ >= 0) ::close(fd_);
    ::unlink(path_.c_str());
  }
  int fd() const { return fd_; }

 private:
  std::string path_;
  int fd_ = -1;
};

// Clears the global hook table even when a test fails mid-way.
struct HookGuard {
  ~HookGuard() { io::ClearFileIoHooksForTest(); }
};

std::vector<uint8_t> Pattern(size_t n, uint8_t salt) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>((i * 131 + salt) & 0xff);
  }
  return v;
}

TEST(ParseIoEngineTest, NamesRoundTripAndJunkIsRejected) {
  IoEngineKind k = IoEngineKind::kSync;
  for (const char* name : {"sync", "pool", "uring"}) {
    ASSERT_TRUE(ParseIoEngine(name, &k)) << name;
    EXPECT_STREQ(IoEngineName(k), name);
  }
  EXPECT_FALSE(ParseIoEngine("", &k));
  EXPECT_FALSE(ParseIoEngine("io_uring", &k));
  EXPECT_FALSE(ParseIoEngine("POOL", &k));
}

TEST(ResumeLoopTest, PwriteThenPreadFullyUnderPartialTransfersAndEintr) {
  ScratchFile f("resume_loop");
  const std::vector<uint8_t> data = Pattern(1000, 7);

  // Every third call fails with EINTR; successful calls transfer at
  // most 7 bytes. The loops must stitch the full transfer anyway.
  HookGuard guard;
  std::atomic<uint64_t> calls{0};
  io::FileIoHooks hooks;
  hooks.pwrite = [&](int fd, const void* buf, size_t len, off_t off) {
    if (calls.fetch_add(1) % 3 == 2) {
      errno = EINTR;
      return static_cast<ssize_t>(-1);
    }
    return ::pwrite(fd, buf, std::min<size_t>(len, 7), off);
  };
  hooks.pread = [&](int fd, void* buf, size_t len, off_t off) {
    if (calls.fetch_add(1) % 3 == 2) {
      errno = EINTR;
      return static_cast<ssize_t>(-1);
    }
    return ::pread(fd, buf, std::min<size_t>(len, 7), off);
  };
  io::SetFileIoHooksForTest(std::move(hooks));

  ASSERT_TRUE(io::PwriteFully(f.fd(), data.data(), data.size(), 16).ok());
  std::vector<uint8_t> back(data.size(), 0);
  ASSERT_TRUE(io::PreadFully(f.fd(), back.data(), back.size(), 16).ok());
  EXPECT_EQ(back, data);
  // The 7-byte cap forces many resumptions — prove the loops looped.
  EXPECT_GT(calls.load(), 2 * (data.size() / 7));
}

TEST(ResumeLoopTest, PreadFullyReportsEofAsError) {
  ScratchFile f("eof");
  ASSERT_EQ(::ftruncate(f.fd(), 64), 0);
  std::vector<uint8_t> buf(128, 0);
  const Status s = io::PreadFully(f.fd(), buf.data(), buf.size(), 0);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("EOF"), std::string::npos) << s.ToString();
}

TEST(ResumeLoopTest, RealErrorsSurfaceWithErrnoText) {
  ScratchFile f("err");
  HookGuard guard;
  io::FileIoHooks hooks;
  hooks.pwrite = [](int, const void*, size_t, off_t) {
    errno = ENOSPC;
    return static_cast<ssize_t>(-1);
  };
  io::SetFileIoHooksForTest(std::move(hooks));
  const uint8_t b = 0;
  const Status s = io::PwriteFully(f.fd(), &b, 1, 0);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find(std::strerror(ENOSPC)), std::string::npos)
      << s.ToString();
}

TEST(ResumeLoopTest, VectoredIoAdvancesThroughPartialIovecs) {
  ScratchFile f("vectored");
  // Four buffers of uneven sizes; the hook transfers at most 5 bytes
  // per call, so nearly every call splits an iovec mid-way.
  std::vector<std::vector<uint8_t>> bufs;
  for (size_t i = 0; i < 4; ++i) bufs.push_back(Pattern(3 + 4 * i, 11 + i));

  HookGuard guard;
  std::atomic<uint64_t> calls{0};
  auto clamp = [](const struct iovec* iov, int cnt, size_t cap) {
    std::vector<struct iovec> out;
    size_t left = cap;
    for (int i = 0; i < cnt && left > 0; ++i) {
      struct iovec v = iov[i];
      v.iov_len = std::min(v.iov_len, left);
      left -= v.iov_len;
      out.push_back(v);
    }
    return out;
  };
  io::FileIoHooks hooks;
  hooks.pwritev = [&](int fd, const struct iovec* iov, int cnt, off_t off) {
    if (calls.fetch_add(1) % 4 == 3) {
      errno = EINTR;
      return static_cast<ssize_t>(-1);
    }
    auto small = clamp(iov, cnt, 5);
    return ::pwritev(fd, small.data(), static_cast<int>(small.size()), off);
  };
  hooks.preadv = [&](int fd, const struct iovec* iov, int cnt, off_t off) {
    if (calls.fetch_add(1) % 4 == 3) {
      errno = EINTR;
      return static_cast<ssize_t>(-1);
    }
    auto small = clamp(iov, cnt, 5);
    return ::preadv(fd, small.data(), static_cast<int>(small.size()), off);
  };
  io::SetFileIoHooksForTest(std::move(hooks));

  std::vector<struct iovec> wv;
  for (auto& b : bufs) wv.push_back({b.data(), b.size()});
  ASSERT_TRUE(io::VectoredIo(f.fd(), wv, 0, /*write=*/true).ok());

  std::vector<std::vector<uint8_t>> back;
  std::vector<struct iovec> rv;
  for (auto& b : bufs) {
    back.emplace_back(b.size(), 0);
    rv.push_back({back.back().data(), back.back().size()});
  }
  ASSERT_TRUE(io::VectoredIo(f.fd(), rv, 0, /*write=*/false).ok());
  EXPECT_EQ(back, bufs);
}

TEST(AsyncIoEngineTest, CreateContract) {
  EXPECT_EQ(AsyncIoEngine::Create(IoEngineKind::kSync, 8), nullptr);

  auto pool = AsyncIoEngine::Create(IoEngineKind::kPool, 0);
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->kind(), IoEngineKind::kPool);
  EXPECT_EQ(pool->queue_depth(), 1u);  // clamped up from 0

  auto wide = AsyncIoEngine::Create(IoEngineKind::kPool, 100000);
  ASSERT_NE(wide, nullptr);
  EXPECT_EQ(wide->queue_depth(), 128u);  // clamped down

  // uring must come up as itself or fall back to the pool — never fail.
  auto uring = AsyncIoEngine::Create(IoEngineKind::kUring, 4);
  ASSERT_NE(uring, nullptr);
  EXPECT_TRUE(uring->kind() == IoEngineKind::kUring ||
              uring->kind() == IoEngineKind::kPool);
}

class EngineRoundTripTest : public ::testing::TestWithParam<IoEngineKind> {};

// Writes pages through the engine, reads them back through the engine,
// and checks the data plus the exactly-once completion contract.
TEST_P(EngineRoundTripTest, OverlappedWritesThenReadsRoundTrip) {
  auto engine = AsyncIoEngine::Create(GetParam(), 4);
  ASSERT_NE(engine, nullptr);
  ScratchFile f(std::string("roundtrip_") + IoEngineName(GetParam()));
  constexpr size_t kPages = 16;
  constexpr size_t kPage = 512;
  ASSERT_EQ(::ftruncate(f.fd(), kPages * kPage), 0);

  std::vector<std::vector<uint8_t>> pages;
  for (size_t i = 0; i < kPages; ++i) {
    pages.push_back(Pattern(kPage, static_cast<uint8_t>(i)));
  }

  std::mutex mu;
  std::condition_variable cv;
  size_t landed = 0;
  auto submit = [&](IoRequest::Op op, size_t i, std::vector<uint8_t>* buf) {
    IoRequest req;
    req.op = op;
    req.fd = f.fd();
    req.offset = static_cast<off_t>(i * kPage);
    req.iov.push_back({buf->data(), buf->size()});
    req.done = [&](Status s) {
      EXPECT_TRUE(s.ok()) << s.ToString();
      std::lock_guard<std::mutex> lk(mu);
      ++landed;
      cv.notify_one();
    };
    engine->Submit(std::move(req));
  };
  auto wait_all = [&](size_t want) {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return landed == want; });
  };

  for (size_t i = 0; i < kPages; ++i) {
    submit(IoRequest::Op::kWrite, i, &pages[i]);
  }
  wait_all(kPages);

  std::vector<std::vector<uint8_t>> back(kPages,
                                         std::vector<uint8_t>(kPage, 0));
  for (size_t i = 0; i < kPages; ++i) {
    submit(IoRequest::Op::kRead, i, &back[i]);
  }
  wait_all(2 * kPages);
  EXPECT_EQ(back, pages);
}

// Destroying the engine with units still queued must execute them all —
// the owners close their fds only after the engine is gone.
TEST_P(EngineRoundTripTest, DestructionDrainsEveryQueuedUnit) {
  ScratchFile f(std::string("drain_") + IoEngineName(GetParam()));
  constexpr size_t kUnits = 64;
  ASSERT_EQ(::ftruncate(f.fd(), kUnits * 64), 0);
  std::vector<std::vector<uint8_t>> bufs;
  for (size_t i = 0; i < kUnits; ++i) {
    bufs.push_back(Pattern(64, static_cast<uint8_t>(i)));
  }
  std::atomic<size_t> landed{0};
  {
    auto engine = AsyncIoEngine::Create(GetParam(), 2);
    ASSERT_NE(engine, nullptr);
    for (size_t i = 0; i < kUnits; ++i) {
      IoRequest req;
      req.op = IoRequest::Op::kWrite;
      req.fd = f.fd();
      req.offset = static_cast<off_t>(i * 64);
      req.iov.push_back({bufs[i].data(), bufs[i].size()});
      req.done = [&](Status s) {
        EXPECT_TRUE(s.ok()) << s.ToString();
        landed.fetch_add(1);
      };
      engine->Submit(std::move(req));
    }
  }  // ~AsyncIoEngine: drain, not drop
  EXPECT_EQ(landed.load(), kUnits);
  for (size_t i = 0; i < kUnits; ++i) {
    std::vector<uint8_t> back(64, 0);
    ASSERT_TRUE(io::PreadFully(f.fd(), back.data(), 64,
                               static_cast<off_t>(i * 64))
                    .ok());
    EXPECT_EQ(back, bufs[i]) << "unit " << i;
  }
}

// A failing unit must complete with the error, not hang or crash.
TEST_P(EngineRoundTripTest, ErrorsReachTheCompletion) {
  auto engine = AsyncIoEngine::Create(GetParam(), 2);
  ASSERT_NE(engine, nullptr);
  std::vector<uint8_t> buf(64, 0);
  std::mutex mu;
  std::condition_variable cv;
  bool landed = false;
  Status got = Status::OK();
  IoRequest req;
  req.op = IoRequest::Op::kRead;
  req.fd = -1;  // EBADF
  req.iov.push_back({buf.data(), buf.size()});
  req.done = [&](Status s) {
    std::lock_guard<std::mutex> lk(mu);
    got = s;
    landed = true;
    cv.notify_one();
  };
  engine->Submit(std::move(req));
  std::unique_lock<std::mutex> lk(mu);
  cv.wait(lk, [&] { return landed; });
  EXPECT_FALSE(got.ok());
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineRoundTripTest,
                         ::testing::Values(IoEngineKind::kPool,
                                           IoEngineKind::kUring),
                         [](const auto& info) {
                           return std::string(IoEngineName(info.param));
                         });

// The pool engine runs its transfers through the shared resume loops,
// so the same fault shim exercises its short-completion path: partial
// vectored transfers with periodic EINTR must still complete units OK.
TEST(AsyncIoEngineTest, PoolEngineResumesShortTransfersUnderFaults) {
  ScratchFile f("pool_faults");
  ASSERT_EQ(::ftruncate(f.fd(), 4096), 0);
  HookGuard guard;
  std::atomic<uint64_t> calls{0};
  io::FileIoHooks hooks;
  hooks.pwritev = [&](int fd, const struct iovec* iov, int cnt, off_t off) {
    if (calls.fetch_add(1) % 3 == 2) {
      errno = EINTR;
      return static_cast<ssize_t>(-1);
    }
    struct iovec first = iov[0];
    (void)cnt;
    first.iov_len = std::min<size_t>(first.iov_len, 9);
    return ::pwritev(fd, &first, 1, off);
  };
  io::SetFileIoHooksForTest(std::move(hooks));

  // Depth 1 keeps the global hook table single-threaded.
  auto engine = AsyncIoEngine::Create(IoEngineKind::kPool, 1);
  ASSERT_NE(engine, nullptr);
  std::vector<uint8_t> a = Pattern(700, 3);
  std::vector<uint8_t> b = Pattern(300, 5);
  std::mutex mu;
  std::condition_variable cv;
  size_t landed = 0;
  IoRequest req;
  req.op = IoRequest::Op::kWrite;
  req.fd = f.fd();
  req.offset = 0;
  req.iov.push_back({a.data(), a.size()});
  req.iov.push_back({b.data(), b.size()});
  req.done = [&](Status s) {
    EXPECT_TRUE(s.ok()) << s.ToString();
    std::lock_guard<std::mutex> lk(mu);
    ++landed;
    cv.notify_one();
  };
  engine->Submit(std::move(req));
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return landed == 1; });
  }
  io::ClearFileIoHooksForTest();

  std::vector<uint8_t> back(1000, 0);
  ASSERT_TRUE(io::PreadFully(f.fd(), back.data(), back.size(), 0).ok());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), back.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), back.begin() + 700));
  EXPECT_GT(calls.load(), (700u + 300u) / 9);
}

}  // namespace
}  // namespace burtree
