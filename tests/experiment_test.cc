// Integration tests of the experiment harness — small-scale versions of
// the paper's headline claims, asserted as inequalities so they double as
// regression checks on the reproduction's "shape".
#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "concurrency_test_util.h"

namespace burtree {
namespace {

ExperimentConfig SmallConfig(StrategyKind kind) {
  ExperimentConfig cfg;
  cfg.strategy = kind;
  cfg.workload.num_objects = 8000;
  cfg.num_updates = 8000;
  cfg.num_queries = 300;
  cfg.workload.seed = 20030901;
  cfg.validate_after = true;
  return cfg;
}

TEST(ExperimentTest, RunsAllStrategies) {
  for (StrategyKind kind :
       {StrategyKind::kTopDown, StrategyKind::kLocalizedBottomUp,
        StrategyKind::kGeneralizedBottomUp}) {
    auto res = RunExperiment(SmallConfig(kind));
    ASSERT_TRUE(res.ok()) << StrategyName(kind);
    EXPECT_EQ(res.value().num_updates, 8000u);
    EXPECT_GT(res.value().avg_update_io, 0.0);
    EXPECT_GT(res.value().avg_query_io, 0.0);
    EXPECT_GT(res.value().query_matches, 0u);
    EXPECT_EQ(res.value().paths.total(), 8000u);
  }
}

TEST(ExperimentTest, HeadlineResultGbuBeatsTdOnUpdates) {
  // The paper's regime: a tree of height >= 4 (its cost analysis notes
  // bottom-up wins on average for height-4 trees) and a small buffer.
  auto mk = [](StrategyKind kind) {
    ExperimentConfig cfg = SmallConfig(kind);
    cfg.workload.num_objects = 20000;
    cfg.num_updates = 20000;
    cfg.buffer_fraction = 0.0;
    return cfg;
  };
  auto td = RunExperiment(mk(StrategyKind::kTopDown));
  auto gbu = RunExperiment(mk(StrategyKind::kGeneralizedBottomUp));
  ASSERT_TRUE(td.ok());
  ASSERT_TRUE(gbu.ok());
  ASSERT_GE(gbu.value().tree_height, 4u);
  // The paper's core claim: bottom-up updates need a fraction of TD's
  // disk accesses.
  EXPECT_LT(gbu.value().avg_update_io, td.value().avg_update_io * 0.7);
}

TEST(ExperimentTest, GbuQueryCompetitiveWithTd) {
  auto td = RunExperiment(SmallConfig(StrategyKind::kTopDown));
  auto gbu =
      RunExperiment(SmallConfig(StrategyKind::kGeneralizedBottomUp));
  ASSERT_TRUE(td.ok());
  ASSERT_TRUE(gbu.ok());
  // With small epsilon, GBU's query performance is on par or better
  // (paper §5.1.1).
  EXPECT_LT(gbu.value().avg_query_io, td.value().avg_query_io * 1.25);
}

TEST(ExperimentTest, IdenticalSeedsGiveIdenticalWorkloads) {
  auto a = RunExperiment(SmallConfig(StrategyKind::kGeneralizedBottomUp));
  auto b = RunExperiment(SmallConfig(StrategyKind::kGeneralizedBottomUp));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().avg_update_io, b.value().avg_update_io);
  EXPECT_EQ(a.value().query_matches, b.value().query_matches);
}

TEST(ExperimentTest, BufferReducesIo) {
  ExperimentConfig none = SmallConfig(StrategyKind::kGeneralizedBottomUp);
  none.buffer_fraction = 0.0;
  ExperimentConfig big = SmallConfig(StrategyKind::kGeneralizedBottomUp);
  big.buffer_fraction = 0.10;
  auto r0 = RunExperiment(none);
  auto r1 = RunExperiment(big);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_LT(r1.value().avg_update_io, r0.value().avg_update_io);
  EXPECT_LT(r1.value().avg_query_io, r0.value().avg_query_io);
}

TEST(ExperimentTest, BulkBuildPipelineWorks) {
  ExperimentConfig cfg = SmallConfig(StrategyKind::kGeneralizedBottomUp);
  cfg.bulk_build = true;
  auto res = RunExperiment(cfg);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res.value().query_matches, 0u);
}

TEST(ExperimentTest, LargerEpsilonReducesGbuUpdateIo) {
  ExperimentConfig small = SmallConfig(StrategyKind::kGeneralizedBottomUp);
  small.gbu.epsilon = 0.0;
  ExperimentConfig large = SmallConfig(StrategyKind::kGeneralizedBottomUp);
  large.gbu.epsilon = 0.03;
  auto r0 = RunExperiment(small);
  auto r1 = RunExperiment(large);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  // Fig. 5(a): a larger epsilon benefits GBU update cost.
  EXPECT_LE(r1.value().avg_update_io, r0.value().avg_update_io);
}

TEST(ExperimentTest, FasterMovementCostsMore) {
  ExperimentConfig slow = SmallConfig(StrategyKind::kGeneralizedBottomUp);
  slow.workload.max_move_distance = 0.003;
  ExperimentConfig fast = SmallConfig(StrategyKind::kGeneralizedBottomUp);
  fast.workload.max_move_distance = 0.15;
  auto r0 = RunExperiment(slow);
  auto r1 = RunExperiment(fast);
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  // Fig. 5(g): update cost deteriorates with movement speed.
  EXPECT_GT(r1.value().avg_update_io, r0.value().avg_update_io);
}

TEST(ExperimentTest, Gbu0BeatsLbuOnUpdates) {
  // Fig 6(a): "the update performance of GBU-0 is better than that of
  // LBU as a result of improved optimizations" — even with no ascent,
  // the bit vector and the delta ordering save I/O. The figure makes the
  // claim across movement speeds; it is clearest for faster movers.
  ExperimentConfig lbu = SmallConfig(StrategyKind::kLocalizedBottomUp);
  lbu.workload.max_move_distance = 0.1;
  ExperimentConfig gbu0 =
      SmallConfig(StrategyKind::kGeneralizedBottomUp);
  gbu0.workload.max_move_distance = 0.1;
  gbu0.gbu.level_threshold = 0;
  auto a = RunExperiment(lbu);
  auto b = RunExperiment(gbu0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // At 1/100 of the paper's scale the two are within noise of each other
  // (LBU's probe overhead shrinks with small sibling sets); assert
  // GBU-0 is at least on par — the paper-scale gap is visible in
  // bench_fig6_level.
  EXPECT_LT(b.value().avg_update_io, a.value().avg_update_io * 1.10);
}

class DistributionSweepTest
    : public ::testing::TestWithParam<Distribution> {};

TEST_P(DistributionSweepTest, AllStrategiesCorrectUnderDistribution) {
  for (StrategyKind kind :
       {StrategyKind::kTopDown, StrategyKind::kLocalizedBottomUp,
        StrategyKind::kGeneralizedBottomUp}) {
    ExperimentConfig cfg = SmallConfig(kind);
    cfg.workload.num_objects = 4000;
    cfg.num_updates = 4000;
    cfg.num_queries = 100;
    cfg.workload.distribution = GetParam();
    auto res = RunExperiment(cfg);
    ASSERT_TRUE(res.ok()) << StrategyName(kind);
    EXPECT_EQ(res.value().paths.total(), 4000u);
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, DistributionSweepTest,
                         ::testing::Values(Distribution::kUniform,
                                           Distribution::kGaussian,
                                           Distribution::kSkewed),
                         [](const auto& info) {
                           return DistributionName(info.param);
                         });

TEST(ExperimentThroughputTest, GbuBeatsTdAtHighUpdateShare) {
  ThroughputConfig mk;
  mk.base.workload.num_objects = 4000;
  mk.threads = 16;
  mk.ops_per_thread = 60;
  mk.update_fraction = 1.0;  // 100% updates: Fig. 8's right edge
  mk.concurrency.io_latency_us = 50;

  // The Figure-8 claim is qualitative — GBU above TD at a 100%-update
  // mix — so use the shared retry wrapper for the noisy comparison.
  EXPECT_TRUE(testutil::EventuallyFaster(
      [&]() {
        mk.base.strategy = StrategyKind::kGeneralizedBottomUp;
        return testutil::MustRunTps(mk);
      },
      [&]() {
        mk.base.strategy = StrategyKind::kTopDown;
        return testutil::MustRunTps(mk);
      }));
}

}  // namespace
}  // namespace burtree
