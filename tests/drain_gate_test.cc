// Direct unit tests for the writer-priority DrainGate (common/
// drain_gate.h). The gate underpins the hash-index bucket split, the
// coupled compound-SMO gate;
// these tests pin its two contracts at the source rather than through
// those subsystems: (1) a writer gets in under a saturated reader
// stream within bounded time, (2) try_lock_shared defers to announced
// writers instead of slipping past them.
#include "common/drain_gate.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

namespace burtree {
namespace {

TEST(DrainGateTest, WriterEntersUnderSaturatedReaderStream) {
  DrainGate gate;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_sections{0};

  // Readers re-acquire in a tight loop: on glibc's reader-preferring
  // shared_mutex this stream would starve a blocked writer forever.
  const unsigned n = std::max(2u, std::thread::hardware_concurrency());
  std::vector<std::thread> readers;
  for (unsigned i = 0; i < n; ++i) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::shared_lock<DrainGate> s(gate);
        reader_sections.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let the stream saturate before the writer announces.
  while (reader_sections.load(std::memory_order_relaxed) < 1000) {
    std::this_thread::yield();
  }

  std::atomic<bool> writer_in{false};
  std::thread writer([&] {
    std::lock_guard<DrainGate> x(gate);
    writer_in.store(true, std::memory_order_release);
  });

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!writer_in.load(std::memory_order_acquire)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "writer starved by the reader stream";
    std::this_thread::yield();
  }
  stop = true;
  writer.join();
  for (auto& t : readers) t.join();
}

TEST(DrainGateTest, TryLockSharedDefersToAnnouncedWriter) {
  DrainGate gate;
  gate.lock_shared();  // keep the gate shared so the writer must wait

  std::thread writer([&] { std::lock_guard<DrainGate> x(gate); });
  // Wait until the writer has announced itself (it blocks in lock()
  // while we hold the shared side): announcement must make new shared
  // admissions fail rather than pile in ahead of the writer.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (gate.try_lock_shared()) {
    gate.unlock_shared();
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "try_lock_shared never deferred to the announced writer";
    std::this_thread::yield();
  }

  gate.unlock_shared();  // drain: the writer enters and releases
  writer.join();

  // With no writer waiting, shared admission works again.
  ASSERT_TRUE(gate.try_lock_shared());
  gate.unlock_shared();
}

TEST(DrainGateTest, TryLockNeverBlocksAndRespectsHolders) {
  DrainGate gate;
  ASSERT_TRUE(gate.try_lock());
  EXPECT_FALSE(gate.try_lock_shared());
  gate.unlock();

  gate.lock_shared();
  EXPECT_FALSE(gate.try_lock());
  gate.unlock_shared();
  ASSERT_TRUE(gate.try_lock());
  gate.unlock();
}

}  // namespace
}  // namespace burtree
