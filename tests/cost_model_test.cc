#include "analysis/cost_model.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "harness/experiment.h"
#include "storage/page_file.h"

namespace burtree {
namespace {

TreeShape BuildShape(uint64_t objects, uint64_t seed) {
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 1 << 16);
  RTree tree(&pool, opts);
  Rng rng(seed);
  for (ObjectId i = 0; i < objects; ++i) {
    BURTREE_CHECK(tree.Insert(i, Rect::FromPoint(Point{rng.NextDouble(),
                                                       rng.NextDouble()}))
                      .ok());
  }
  return tree.CollectShape();
}

TEST(ProbStayWithinMbrTest, Boundaries) {
  EXPECT_DOUBLE_EQ(ProbStayWithinMbr(0.0, 0.1, 0.1), 1.0);
  // Displacement far beyond the MBR: certain escape.
  EXPECT_DOUBLE_EQ(ProbStayWithinMbr(10.0, 0.1, 0.1), 0.0);
  // Monotone decreasing in d.
  double prev = 1.0;
  for (double d = 0.0; d < 0.3; d += 0.01) {
    const double p = ProbStayWithinMbr(d, 0.05, 0.05);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
  // Larger MBRs retain better.
  EXPECT_GT(ProbStayWithinMbr(0.02, 0.2, 0.2),
            ProbStayWithinMbr(0.02, 0.05, 0.05));
}

TEST(ExpectedQueryAccessesTest, GrowsWithWindow) {
  const TreeShape shape = BuildShape(20000, 1);
  const double small = ExpectedQueryAccesses(shape, 0.01, 0.01);
  const double big = ExpectedQueryAccesses(shape, 0.2, 0.2);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(big, small);
  // Query covering everything touches every node.
  const double all = ExpectedQueryAccesses(shape, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(all, static_cast<double>(shape.total_nodes));
}

TEST(ExpectedQueryAccessesTest, PointQueryAtLeastHeight) {
  const TreeShape shape = BuildShape(20000, 2);
  // A point query descends at least one full path.
  EXPECT_GE(ExpectedQueryAccesses(shape, 0.0, 0.0),
            static_cast<double>(shape.levels.size()) - 0.5);
}

TEST(ExpectedTopDownUpdateIoTest, ExceedsBottomUpWorstCase) {
  const TreeShape shape = BuildShape(30000, 3);
  // The paper's headline inequality: for trees of height >= 4, expected
  // TD update cost exceeds the bottom-up worst case of 7.
  ASSERT_GE(shape.levels.size(), 4u);
  EXPECT_GT(ExpectedTopDownUpdateIo(shape), kBottomUpWorstCaseIo);
}

TEST(ExpectedBottomUpUpdateIoTest, WithinAnalyticBounds) {
  const TreeShape shape = BuildShape(30000, 4);
  BottomUpCostParams params;
  params.max_move_distance = 0.03;
  const double b = ExpectedBottomUpUpdateIo(shape, params);
  EXPECT_GE(b, 3.0);                     // can't beat the Case-1 floor
  EXPECT_LE(b, kBottomUpWorstCaseIo);    // capped by the constant-7 bound
  // Faster movement -> higher expected cost.
  BottomUpCostParams fast = params;
  fast.max_move_distance = 0.15;
  EXPECT_GT(ExpectedBottomUpUpdateIo(shape, fast), b);
}

TEST(ExpectedBottomUpUpdateIoTest, SummaryCapsTheAscent) {
  const TreeShape shape = BuildShape(30000, 5);
  BottomUpCostParams with;
  with.max_move_distance = 0.15;
  with.use_summary = true;
  BottomUpCostParams without = with;
  without.use_summary = false;
  without.sibling_success = 0.0;  // worst case: full recursive ascent
  EXPECT_LT(ExpectedBottomUpUpdateIo(shape, with),
            ExpectedBottomUpUpdateIo(shape, without));
}

TEST(CostModelIntegrationTest, PredictsMeasuredGbuCostWithinFactor) {
  // Run a real GBU experiment and check the analytic expectation is in
  // the right ballpark (same order of magnitude; the model is worst-case
  // corner-positioned, so measured <= predicted typically).
  ExperimentConfig cfg;
  cfg.strategy = StrategyKind::kGeneralizedBottomUp;
  cfg.workload.num_objects = 20000;
  cfg.num_updates = 20000;
  cfg.num_queries = 0;
  cfg.buffer_fraction = 0.0;
  auto res = RunExperiment(cfg);
  ASSERT_TRUE(res.ok());

  const TreeShape shape = BuildShape(20000, cfg.workload.seed);
  BottomUpCostParams params;
  params.max_move_distance = cfg.workload.max_move_distance;
  const double predicted = ExpectedBottomUpUpdateIo(shape, params);
  EXPECT_GT(res.value().avg_update_io, 0.5 * 3.0);
  EXPECT_LT(res.value().avg_update_io, 4.0 * predicted);
}

TEST(TopDownBestCaseTest, Formula) {
  EXPECT_DOUBLE_EQ(TopDownBestCaseIo(4), 5.0);
  EXPECT_DOUBLE_EQ(TopDownBestCaseIo(6), 7.0);  // == bottom-up worst case
}

}  // namespace
}  // namespace burtree
