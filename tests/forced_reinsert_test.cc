// Tests for R*-style forced re-insertion on overflow (TreeOptions::
// forced_reinsert) — the alternative reading of the paper's "R-tree with
// re-insertions" baseline.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "rtree/rtree.h"
#include "storage/page_file.h"

namespace burtree {
namespace {

struct Fixture {
  explicit Fixture(TreeOptions opts)
      : file(opts.page_size), pool(&file, 4096), tree(&pool, opts) {}
  PageFile file;
  BufferPool pool;
  RTree tree;
};

TreeOptions WithReinsert() {
  TreeOptions opts;
  opts.forced_reinsert = true;
  return opts;
}

TEST(ForcedReinsertTest, FiresOnOverflow) {
  Fixture fx(WithReinsert());
  Rng rng(1);
  for (ObjectId i = 0; i < 2000; ++i) {
    ASSERT_TRUE(fx.tree
                    .Insert(i, Rect::FromPoint(
                                   Point{rng.NextDouble(), rng.NextDouble()}))
                    .ok());
  }
  EXPECT_GT(fx.tree.stats().forced_reinserts, 0u);
  EXPECT_TRUE(fx.tree.Validate().ok());
}

TEST(ForcedReinsertTest, AllObjectsRemainFindable) {
  Fixture fx(WithReinsert());
  Rng rng(2);
  std::vector<Point> pts;
  for (ObjectId i = 0; i < 3000; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    pts.push_back(p);
    ASSERT_TRUE(fx.tree.Insert(i, Rect::FromPoint(p)).ok());
  }
  std::set<ObjectId> all;
  ASSERT_TRUE(fx.tree.Query(Rect(0, 0, 1, 1), [&](ObjectId oid, const Rect&) {
    all.insert(oid);
  }).ok());
  EXPECT_EQ(all.size(), 3000u);
  // Point probes for a sample.
  for (ObjectId i = 0; i < 3000; i += 97) {
    bool found = false;
    ASSERT_TRUE(fx.tree.Query(Rect::FromPoint(pts[i]),
                              [&](ObjectId oid, const Rect&) {
                                found |= (oid == i);
                              })
                    .ok());
    EXPECT_TRUE(found) << "oid " << i;
  }
}

TEST(ForcedReinsertTest, DeletesStillWork) {
  Fixture fx(WithReinsert());
  Rng rng(3);
  std::vector<Point> pts;
  for (ObjectId i = 0; i < 2000; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    pts.push_back(p);
    ASSERT_TRUE(fx.tree.Insert(i, Rect::FromPoint(p)).ok());
  }
  for (ObjectId i = 0; i < 2000; i += 2) {
    ASSERT_TRUE(fx.tree.Delete(i, Rect::FromPoint(pts[i])).ok());
  }
  ASSERT_TRUE(fx.tree.Validate().ok());
  std::set<ObjectId> all;
  ASSERT_TRUE(fx.tree.Query(Rect(0, 0, 1, 1), [&](ObjectId oid, const Rect&) {
    all.insert(oid);
  }).ok());
  EXPECT_EQ(all.size(), 1000u);
}

TEST(ForcedReinsertTest, ImprovesStorageUtilization) {
  // The robust R* effect: re-inserting before splitting defers splits and
  // packs leaves fuller on a skewed insertion order.
  TreeOptions plain;
  TreeOptions rstar = WithReinsert();
  Fixture a(plain), b(rstar);
  Rng r1(4);
  // Insert in sorted-x order (adversarial for plain Guttman trees).
  std::vector<Point> pts;
  for (int i = 0; i < 4000; ++i) {
    pts.push_back(Point{static_cast<double>(i) / 4000.0, r1.NextDouble()});
  }
  for (ObjectId i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(a.tree.Insert(i, Rect::FromPoint(pts[i])).ok());
    ASSERT_TRUE(b.tree.Insert(i, Rect::FromPoint(pts[i])).ok());
  }
  const TreeShape sa = a.tree.CollectShape();
  const TreeShape sb = b.tree.CollectShape();
  EXPECT_GE(sb.levels[0].avg_fill, sa.levels[0].avg_fill);
  EXPECT_LE(sb.levels[0].node_count, sa.levels[0].node_count);
  EXPECT_TRUE(b.tree.Validate().ok());
}

TEST(ForcedReinsertTest, ObserverStaysConsistent) {
  // Forced re-insertion moves entries between leaves: the oid index must
  // track every hop.
  TreeOptions opts = WithReinsert();
  Fixture fx(opts);
  class Recorder : public TreeObserver {
   public:
    std::unordered_map<ObjectId, PageId> map;
    void OnLeafEntryAdded(ObjectId oid, PageId leaf) override {
      map[oid] = leaf;
    }
    void OnLeafEntryRemoved(ObjectId oid, PageId leaf) override {
      auto it = map.find(oid);
      if (it != map.end() && it->second == leaf) map.erase(it);
    }
  } recorder;
  fx.tree.set_observer(&recorder);

  Rng rng(5);
  for (ObjectId i = 0; i < 2500; ++i) {
    ASSERT_TRUE(fx.tree
                    .Insert(i, Rect::FromPoint(
                                   Point{rng.NextDouble(), rng.NextDouble()}))
                    .ok());
  }
  ASSERT_EQ(recorder.map.size(), 2500u);
  // Every mapping points at a leaf that really holds the oid.
  for (ObjectId i = 0; i < 2500; i += 83) {
    auto it = recorder.map.find(i);
    ASSERT_NE(it, recorder.map.end());
    PageGuard g = PageGuard::Fetch(&fx.pool, it->second);
    NodeView v(g.data(), 1024, false);
    EXPECT_GE(v.FindOidSlot(i), 0) << "oid " << i;
  }
}

TEST(ForcedReinsertTest, RespectsReinsertFraction) {
  TreeOptions opts = WithReinsert();
  opts.reinsert_fraction = 0.5;
  Fixture fx(opts);
  Rng rng(6);
  for (ObjectId i = 0; i < 1500; ++i) {
    ASSERT_TRUE(fx.tree
                    .Insert(i, Rect::FromPoint(
                                   Point{rng.NextDouble(), rng.NextDouble()}))
                    .ok());
  }
  EXPECT_GT(fx.tree.stats().forced_reinserts, 0u);
  EXPECT_TRUE(fx.tree.Validate().ok());
}

}  // namespace
}  // namespace burtree
