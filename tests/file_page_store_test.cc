// FilePageStore tests against a real tmpdir file: PageStore-contract
// parity with the in-memory PageFile, reopen-and-reread round trips,
// write-back durability ordering (all pwrites land before the
// fsync-on-flush call returns), and ReadPages partial-failure atomicity.
#include "storage/file_page_store.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/page_file.h"

namespace burtree {
namespace {

constexpr size_t kPageSize = 512;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "burtree_fps_" + name + ".pages";
}

std::unique_ptr<FilePageStore> MustOpen(FilePageStoreOptions opts) {
  auto store = FilePageStore::Open(opts);
  EXPECT_TRUE(store.ok()) << store.status().ToString();
  return std::move(store).value();
}

FilePageStoreOptions BaseOptions(const std::string& name) {
  FilePageStoreOptions opts;
  opts.path = TestPath(name);
  opts.page_size = kPageSize;
  return opts;
}

TEST(FilePageStoreTest, WriteThenReadRoundTripsAndCountsIo) {
  auto f = MustOpen(BaseOptions("roundtrip"));
  EXPECT_EQ(f->live_pages(), 0u);
  const PageId id = f->Allocate();
  EXPECT_EQ(f->io_stats().total_io(), 0u);  // allocation is not I/O
  uint8_t in[kPageSize], out[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) in[i] = static_cast<uint8_t>(i);
  ASSERT_TRUE(f->Write(id, in).ok());
  ASSERT_TRUE(f->Read(id, out).ok());
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
  EXPECT_EQ(f->io_stats().writes(), 1u);
  EXPECT_EQ(f->io_stats().reads(), 1u);
  std::remove(f->path().c_str());
}

TEST(FilePageStoreTest, FreshAndReusedPagesReadZeroed) {
  auto f = MustOpen(BaseOptions("zeroed"));
  const PageId a = f->Allocate();
  uint8_t buf[kPageSize];
  ASSERT_TRUE(f->Read(a, buf).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(buf[i], 0);
  std::memset(buf, 0xAB, sizeof(buf));
  ASSERT_TRUE(f->Write(a, buf).ok());
  ASSERT_TRUE(f->Free(a).ok());
  const PageId b = f->Allocate();  // reuses the slot, zeroed
  EXPECT_EQ(a, b);
  ASSERT_TRUE(f->Read(b, buf).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(buf[i], 0);
  std::remove(f->path().c_str());
}

TEST(FilePageStoreTest, AccessAfterFreeOrOutOfRangeFails) {
  auto f = MustOpen(BaseOptions("nonlive"));
  const PageId id = f->Allocate();
  ASSERT_TRUE(f->Free(id).ok());
  uint8_t buf[kPageSize] = {};
  EXPECT_FALSE(f->Read(id, buf).ok());
  EXPECT_FALSE(f->Write(id, buf).ok());
  EXPECT_FALSE(f->Free(id).ok());  // double free rejected
  EXPECT_FALSE(f->Read(99, buf).ok());
  std::remove(f->path().c_str());
}

TEST(FilePageStoreTest, ReopenAndRereadRoundTrip) {
  FilePageStoreOptions opts = BaseOptions("reopen");
  {
    auto f = MustOpen(opts);
    for (int i = 0; i < 3; ++i) {
      const PageId id = f->Allocate();
      std::vector<uint8_t> img(kPageSize, static_cast<uint8_t>(0x40 + i));
      ASSERT_TRUE(f->Write(id, img.data()).ok());
    }
    ASSERT_TRUE(f->Sync().ok());
  }  // store closed: the only handle on the bytes is the file itself
  FilePageStoreOptions reopen = opts;
  reopen.truncate = false;
  auto f = MustOpen(reopen);
  // No persistent allocation metadata: every slot of the file is live.
  EXPECT_EQ(f->allocated_slots(), 3u);
  EXPECT_EQ(f->live_pages(), 3u);
  for (PageId id = 0; id < 3; ++id) {
    uint8_t buf[kPageSize];
    ASSERT_TRUE(f->Read(id, buf).ok());
    EXPECT_EQ(buf[0], 0x40 + static_cast<int>(id));
    EXPECT_EQ(buf[kPageSize - 1], 0x40 + static_cast<int>(id));
  }
  std::remove(opts.path.c_str());
}

TEST(FilePageStoreTest, ReopenRejectsTornFileSize) {
  const std::string path = TestPath("torn");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("not a page multiple", 19);
  }
  FilePageStoreOptions opts;
  opts.path = path;
  opts.page_size = kPageSize;
  opts.truncate = false;
  auto store = FilePageStore::Open(opts);
  EXPECT_FALSE(store.ok());
  // A torn tail is an I/O-level crash artifact, not a caller mistake:
  // the WAL recovery path keys its tail-truncation handling on IoError.
  EXPECT_EQ(store.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(FilePageStoreTest, CrashTornTailTruncatesToPageBoundaryAndReopens) {
  // The documented recovery procedure (docs/STORAGE.md §WAL): a writer
  // killed mid-pwrite leaves size % page_size != 0; recovery truncates
  // the partial page away and adopts the remainder — the dropped page's
  // record is durable (log-before-flush), so replay rewrites it.
  const std::string path = TestPath("torn_mid_page");
  {
    FilePageStoreOptions opts;
    opts.path = path;
    opts.page_size = kPageSize;
    auto f = MustOpen(opts);
    const PageId a = f->Allocate();
    const PageId b = f->Allocate();
    std::vector<uint8_t> img(kPageSize, 0x7A);
    ASSERT_TRUE(f->Write(a, img.data()).ok());
    img.assign(kPageSize, 0x7B);
    ASSERT_TRUE(f->Write(b, img.data()).ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  // Simulate the kill landing mid-way through page b's pwrite.
  ASSERT_EQ(::truncate(path.c_str(),
                       static_cast<off_t>(kPageSize + kPageSize / 2)),
            0);

  FilePageStoreOptions opts;
  opts.path = path;
  opts.page_size = kPageSize;
  opts.truncate = false;
  EXPECT_EQ(FilePageStore::Open(opts).status().code(),
            StatusCode::kIoError);

  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(kPageSize)), 0);
  auto adopted = FilePageStore::Open(opts);
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_EQ(adopted.value()->live_pages(), 1u);
  uint8_t buf[kPageSize];
  ASSERT_TRUE(adopted.value()->Read(0, buf).ok());
  EXPECT_EQ(buf[0], 0x7A);
  adopted.value().reset();
  std::remove(path.c_str());
}

TEST(FilePageStoreTest, FlushDirtyBatchIsDurableOrderedAndCounted) {
  FilePageStoreOptions opts = BaseOptions("durable");
  opts.fsync_on_flush = true;
  auto f = MustOpen(opts);
  std::vector<PageId> ids{f->Allocate(), f->Allocate(), f->Allocate()};
  std::vector<std::vector<uint8_t>> imgs;
  for (size_t i = 0; i < ids.size(); ++i) {
    imgs.emplace_back(kPageSize, static_cast<uint8_t>(0x60 + i));
  }
  std::vector<PageWriteRequest> reqs;
  for (size_t i = 0; i < ids.size(); ++i) {
    reqs.push_back(PageWriteRequest{ids[i], imgs[i].data()});
  }
  ASSERT_TRUE(f->FlushDirtyBatch(reqs).ok());
  EXPECT_EQ(f->io_stats().writes(), 3u);  // one counted write per page
  // Ordering contract: by the time FlushDirtyBatch returned, every pwrite
  // of the batch had been issued and fdatasync'd — an independent reader
  // of the file (a second open, sharing nothing with our descriptor but
  // the inode) must see the new bytes.
  {
    std::ifstream in(f->path(), std::ios::binary);
    ASSERT_TRUE(in.good());
    std::vector<char> disk(3 * kPageSize);
    in.read(disk.data(), static_cast<std::streamsize>(disk.size()));
    ASSERT_EQ(in.gcount(), static_cast<std::streamsize>(disk.size()));
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(static_cast<uint8_t>(disk[ids[i] * kPageSize]), 0x60 + i);
      EXPECT_EQ(static_cast<uint8_t>(disk[(ids[i] + 1) * kPageSize - 1]),
                0x60 + i);
    }
  }
  // A non-live id anywhere fails the whole batch before any bytes land.
  std::vector<PageWriteRequest> bad{{ids[0], imgs[1].data()},
                                    {static_cast<PageId>(ids[2] + 7),
                                     imgs[2].data()}};
  EXPECT_FALSE(f->FlushDirtyBatch(bad).ok());
  uint8_t buf[kPageSize];
  ASSERT_TRUE(f->Read(ids[0], buf).ok());
  EXPECT_EQ(buf[0], 0x60);  // untouched by the failed batch
  std::remove(f->path().c_str());
}

TEST(FilePageStoreTest, ReadPagesFailsWholeBatchBeforeCopyingAnything) {
  auto f = MustOpen(BaseOptions("atomic"));
  const PageId a = f->Allocate();
  uint8_t seed[kPageSize];
  std::memset(seed, 0x7C, kPageSize);
  ASSERT_TRUE(f->Write(a, seed).ok());
  std::vector<uint8_t> x(kPageSize, 0xFF), y(kPageSize, 0xFF);
  std::vector<PageReadRequest> reqs{{a, x.data()},
                                    {static_cast<PageId>(a + 1), y.data()}};
  const uint64_t reads_before = f->io_stats().reads();
  EXPECT_FALSE(f->ReadPages(reqs).ok());
  EXPECT_EQ(f->io_stats().reads(), reads_before);  // nothing counted
  EXPECT_EQ(x[0], 0xFF);  // nothing copied before the validation pass
  std::remove(f->path().c_str());
}

TEST(FilePageStoreTest, BatchedIoHandlesGapsAndDuplicates) {
  auto f = MustOpen(BaseOptions("batched"));
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(f->Allocate());
    std::vector<uint8_t> img(kPageSize, static_cast<uint8_t>(0x30 + i));
    ASSERT_TRUE(f->Write(ids.back(), img.data()).ok());
  }
  ASSERT_TRUE(f->Free(ids[3]).ok());  // punch a hole in the id range
  // Out-of-order, non-contiguous, duplicated ids: the preadv grouping
  // must split runs at the gap and at the duplicate.
  std::vector<std::vector<uint8_t>> out(5,
                                        std::vector<uint8_t>(kPageSize, 0));
  std::vector<PageReadRequest> reqs{{ids[5], out[0].data()},
                                    {ids[0], out[1].data()},
                                    {ids[1], out[2].data()},
                                    {ids[0], out[3].data()},
                                    {ids[4], out[4].data()}};
  const uint64_t reads_before = f->io_stats().reads();
  ASSERT_TRUE(f->ReadPages(reqs).ok());
  EXPECT_EQ(f->io_stats().reads(), reads_before + 5);
  EXPECT_EQ(out[0][0], 0x35);
  EXPECT_EQ(out[1][0], 0x30);
  EXPECT_EQ(out[2][0], 0x31);
  EXPECT_EQ(out[3][0], 0x30);
  EXPECT_EQ(out[4][0], 0x34);
  std::remove(f->path().c_str());
}

TEST(FilePageStoreTest, DirectIoRequestWorksWithOrWithoutKernelSupport) {
  FilePageStoreOptions opts = BaseOptions("direct");
  opts.direct_io = true;  // tmpfs rejects O_DIRECT: must fall back cleanly
  auto f = MustOpen(opts);
  // Whether O_DIRECT stuck is filesystem-dependent; the contract is that
  // the store works identically either way.
  const PageId id = f->Allocate();
  uint8_t in[kPageSize], out[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) {
    in[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(f->Write(id, in).ok());
  ASSERT_TRUE(f->Read(id, out).ok());
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
  std::vector<PageReadRequest> reqs{{id, out}};
  ASSERT_TRUE(f->ReadPages(reqs).ok());
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
  std::remove(f->path().c_str());
}

TEST(FilePageStoreTest, UnlinkAfterOpenLeavesNoFileBehind) {
  FilePageStoreOptions opts = BaseOptions("scratch");
  opts.unlink_after_open = true;
  auto f = MustOpen(opts);
  const PageId id = f->Allocate();
  uint8_t buf[kPageSize] = {0x11};
  ASSERT_TRUE(f->Write(id, buf).ok());  // I/O still works on the inode
  std::ifstream in(opts.path, std::ios::binary);
  EXPECT_FALSE(in.good());  // the name is already gone
}

TEST(FilePageStoreTest, MatchesMemStoreOnRandomOpScript) {
  // Replay one pseudo-random allocate/free/write/read/batch script
  // against PageFile and FilePageStore and require identical results:
  // same ids, same bytes, same IoStats — the backends are interchangeable
  // behind the PageStore contract.
  PageFile mem(kPageSize);
  auto file = MustOpen(BaseOptions("script"));
  std::vector<PageId> live;
  Rng rng(20030901);
  for (int step = 0; step < 800; ++step) {
    const double r = rng.NextDouble();
    if (live.empty() || r < 0.25) {
      const PageId a = mem.Allocate();
      const PageId b = file->Allocate();
      ASSERT_EQ(a, b);
      live.push_back(a);
      std::vector<uint8_t> img(kPageSize, static_cast<uint8_t>(step));
      ASSERT_TRUE(mem.Write(a, img.data()).ok());
      ASSERT_TRUE(file->Write(a, img.data()).ok());
    } else if (r < 0.55) {
      const PageId id = live[rng.NextBelow(live.size())];
      uint8_t ma[kPageSize], mb[kPageSize];
      ASSERT_TRUE(mem.Read(id, ma).ok());
      ASSERT_TRUE(file->Read(id, mb).ok());
      ASSERT_EQ(std::memcmp(ma, mb, kPageSize), 0) << "page " << id;
    } else if (r < 0.75) {
      std::vector<PageWriteRequest> ra, rb;
      std::vector<std::vector<uint8_t>> imgs;
      imgs.reserve(live.size());  // keep the request pointers stable
      for (PageId id : live) {
        imgs.emplace_back(kPageSize,
                          static_cast<uint8_t>(step ^ static_cast<int>(id)));
        ra.push_back(PageWriteRequest{id, imgs.back().data()});
        rb.push_back(PageWriteRequest{id, imgs.back().data()});
      }
      ASSERT_TRUE(mem.FlushDirtyBatch(ra).ok());
      ASSERT_TRUE(file->FlushDirtyBatch(rb).ok());
    } else if (r < 0.9) {
      std::vector<std::vector<uint8_t>> oa(live.size()), ob(live.size());
      std::vector<PageReadRequest> ra, rb;
      for (size_t i = 0; i < live.size(); ++i) {
        oa[i].resize(kPageSize);
        ob[i].resize(kPageSize);
        ra.push_back(PageReadRequest{live[i], oa[i].data()});
        rb.push_back(PageReadRequest{live[i], ob[i].data()});
      }
      ASSERT_TRUE(mem.ReadPages(ra).ok());
      ASSERT_TRUE(file->ReadPages(rb).ok());
      for (size_t i = 0; i < live.size(); ++i) {
        ASSERT_EQ(std::memcmp(oa[i].data(), ob[i].data(), kPageSize), 0);
      }
    } else {
      const size_t k = rng.NextBelow(live.size());
      ASSERT_TRUE(mem.Free(live[k]).ok());
      ASSERT_TRUE(file->Free(live[k]).ok());
      live.erase(live.begin() + static_cast<long>(k));
    }
    ASSERT_EQ(mem.live_pages(), file->live_pages());
    ASSERT_EQ(mem.allocated_slots(), file->allocated_slots());
  }
  EXPECT_EQ(mem.io_stats().reads(), file->io_stats().reads());
  EXPECT_EQ(mem.io_stats().writes(), file->io_stats().writes());
  std::remove(file->path().c_str());
}

}  // namespace
}  // namespace burtree
