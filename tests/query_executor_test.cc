#include "update/query_executor.h"

#include <gtest/gtest.h>

#include <set>

#include "harness/experiment.h"

namespace burtree {
namespace {

TEST(QueryExecutorTest, SummaryAndPlainAgree) {
  ExperimentConfig cfg;
  cfg.strategy = StrategyKind::kGeneralizedBottomUp;
  cfg.workload.num_objects = 5000;
  WorkloadGenerator workload(cfg.workload);
  auto fx = MakeFixture(cfg);
  ASSERT_TRUE(BuildIndex(cfg, workload, &fx).ok());

  QueryExecutor plain(fx.system.get(), /*use_summary=*/false);
  QueryExecutor with_summary(fx.system.get(), /*use_summary=*/true);

  for (int q = 0; q < 40; ++q) {
    const Rect window = workload.NextQueryWindow();
    std::set<ObjectId> a, b;
    ASSERT_TRUE(plain
                    .Query(window,
                           [&](ObjectId oid, const Rect&) { a.insert(oid); })
                    .ok());
    ASSERT_TRUE(with_summary
                    .Query(window,
                           [&](ObjectId oid, const Rect&) { b.insert(oid); })
                    .ok());
    EXPECT_EQ(a, b) << "window " << window.ToString();
  }
}

TEST(QueryExecutorTest, SummarySavesInternalReads) {
  ExperimentConfig cfg;
  cfg.strategy = StrategyKind::kGeneralizedBottomUp;
  cfg.workload.num_objects = 20000;  // height >= 4 at 1 KB pages
  WorkloadGenerator workload(cfg.workload);
  auto fx = MakeFixture(cfg);
  ASSERT_TRUE(BuildIndex(cfg, workload, &fx).ok());
  ASSERT_GE(fx.system->tree().height(), 3u);
  fx.system->buffer().Resize(0);  // raw I/O comparison

  QueryExecutor plain(fx.system.get(), false);
  QueryExecutor with_summary(fx.system.get(), true);

  uint64_t plain_io = 0, summary_io = 0;
  for (int q = 0; q < 25; ++q) {
    const Rect window = workload.NextQueryWindow();
    auto s0 = IoSnapshot::Take(fx.system->file().io_stats());
    ASSERT_TRUE(plain.Query(window).ok());
    auto s1 = IoSnapshot::Take(fx.system->file().io_stats());
    ASSERT_TRUE(with_summary.Query(window).ok());
    auto s2 = IoSnapshot::Take(fx.system->file().io_stats());
    plain_io += (s1 - s0).total_io();
    summary_io += (s2 - s1).total_io();
  }
  // §3.2: the summary-assisted query must strictly save node reads above
  // the leaf-parent level.
  EXPECT_LT(summary_io, plain_io);
}

TEST(QueryExecutorTest, MatchCountReturned) {
  ExperimentConfig cfg;
  cfg.strategy = StrategyKind::kGeneralizedBottomUp;
  cfg.workload.num_objects = 1000;
  WorkloadGenerator workload(cfg.workload);
  auto fx = MakeFixture(cfg);
  ASSERT_TRUE(BuildIndex(cfg, workload, &fx).ok());
  QueryExecutor exec(fx.system.get(), true);
  auto m = exec.Query(Rect(0, 0, 1, 1));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value(), 1000u);
  auto none = exec.Query(Rect::Empty());
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value(), 0u);
}

TEST(QueryExecutorTest, WorksOnTinyTrees) {
  ExperimentConfig cfg;
  cfg.strategy = StrategyKind::kGeneralizedBottomUp;
  cfg.workload.num_objects = 3;  // single-leaf tree
  WorkloadGenerator workload(cfg.workload);
  auto fx = MakeFixture(cfg);
  ASSERT_TRUE(BuildIndex(cfg, workload, &fx).ok());
  QueryExecutor exec(fx.system.get(), true);
  auto m = exec.Query(Rect(0, 0, 1, 1));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value(), 3u);
}

}  // namespace
}  // namespace burtree
