#include "buffer/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "buffer/page_guard.h"
#include "storage/page_file.h"

namespace burtree {
namespace {

constexpr size_t kPageSize = 256;

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : file_(kPageSize) {}
  PageFile file_;
};

TEST_F(BufferPoolTest, NewPageIsPinnedAndDirty) {
  BufferPool pool(&file_, 4);
  Page* p = pool.NewPage();
  EXPECT_EQ(p->pin_count(), 1);
  EXPECT_TRUE(p->is_dirty());
  pool.UnpinPage(p->page_id(), false);
}

TEST_F(BufferPoolTest, FetchHitAvoidsDiskRead) {
  BufferPool pool(&file_, 4);
  Page* p = pool.NewPage();
  const PageId id = p->page_id();
  pool.UnpinPage(id, true);
  const uint64_t reads_before = file_.io_stats().reads();
  auto res = pool.FetchPage(id);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(file_.io_stats().reads(), reads_before);  // buffer hit
  EXPECT_EQ(pool.stats().hits, 1u);
  pool.UnpinPage(id, false);
}

TEST_F(BufferPoolTest, PassThroughModeAlwaysHitsDisk) {
  BufferPool pool(&file_, 0);
  Page* p = pool.NewPage();
  const PageId id = p->page_id();
  std::memset(p->data(), 0x5A, kPageSize);
  pool.UnpinPage(id, true);  // immediate eviction + write in 0-capacity
  EXPECT_EQ(file_.io_stats().writes(), 1u);
  for (int i = 1; i <= 3; ++i) {
    auto res = pool.FetchPage(id);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.value()->data()[0], 0x5A);
    pool.UnpinPage(id, false);
    EXPECT_EQ(file_.io_stats().reads(), static_cast<uint64_t>(i));
  }
  EXPECT_EQ(pool.stats().hits, 0u);
}

TEST_F(BufferPoolTest, EvictsLruVictim) {
  BufferPool pool(&file_, 2);
  PageId ids[3];
  for (int i = 0; i < 3; ++i) {
    Page* p = pool.NewPage();
    ids[i] = p->page_id();
    p->data()[0] = static_cast<uint8_t>(i + 1);
    pool.UnpinPage(ids[i], true);
  }
  // Capacity 2: creating the third page evicted the least recent (ids[0]).
  EXPECT_EQ(pool.resident_frames(), 2u);
  EXPECT_GE(file_.io_stats().writes(), 1u);
  // Refetch ids[0]: must come from disk with its content intact.
  const uint64_t reads_before = file_.io_stats().reads();
  auto res = pool.FetchPage(ids[0]);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value()->data()[0], 1);
  EXPECT_EQ(file_.io_stats().reads(), reads_before + 1);
  pool.UnpinPage(ids[0], false);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(&file_, 1);
  Page* a = pool.NewPage();
  Page* b = pool.NewPage();  // over capacity, but `a` is pinned
  EXPECT_EQ(pool.resident_frames(), 2u);
  pool.UnpinPage(a->page_id(), true);
  pool.UnpinPage(b->page_id(), true);
  EXPECT_LE(pool.resident_frames(), 1u);
}

TEST_F(BufferPoolTest, DirtyEvictionWritesBack) {
  BufferPool pool(&file_, 1);
  Page* a = pool.NewPage();
  const PageId id_a = a->page_id();
  std::memset(a->data(), 0x77, kPageSize);
  pool.UnpinPage(id_a, true);
  Page* b = pool.NewPage();  // evicts a
  pool.UnpinPage(b->page_id(), true);
  uint8_t raw[kPageSize];
  ASSERT_TRUE(file_.Read(id_a, raw).ok());
  EXPECT_EQ(raw[0], 0x77);
}

TEST_F(BufferPoolTest, FlushAllPersistsDirtyFrames) {
  BufferPool pool(&file_, 8);
  Page* p = pool.NewPage();
  const PageId id = p->page_id();
  std::memset(p->data(), 0x11, kPageSize);
  pool.UnpinPage(id, true);
  EXPECT_EQ(file_.io_stats().writes(), 0u);  // still buffered
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(file_.io_stats().writes(), 1u);
  // Second flush is a no-op (page now clean).
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(file_.io_stats().writes(), 1u);
}

TEST_F(BufferPoolTest, DeletePageFreesDiskPage) {
  BufferPool pool(&file_, 4);
  Page* p = pool.NewPage();
  const PageId id = p->page_id();
  pool.UnpinPage(id, true);
  ASSERT_TRUE(pool.DeletePage(id).ok());
  EXPECT_EQ(file_.live_pages(), 0u);
  EXPECT_FALSE(pool.FetchPage(id).ok());
}

TEST_F(BufferPoolTest, DeletePinnedPageFails) {
  BufferPool pool(&file_, 4);
  Page* p = pool.NewPage();
  EXPECT_FALSE(pool.DeletePage(p->page_id()).ok());
  pool.UnpinPage(p->page_id(), false);
  EXPECT_TRUE(pool.DeletePage(p->page_id()).ok());
}

TEST_F(BufferPoolTest, ResizeShrinksResidency) {
  BufferPool pool(&file_, 8);
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    Page* p = pool.NewPage();
    ids.push_back(p->page_id());
    pool.UnpinPage(p->page_id(), true);
  }
  EXPECT_EQ(pool.resident_frames(), 8u);
  pool.Resize(2);
  EXPECT_LE(pool.resident_frames(), 2u);
  // Everything must still be readable after eviction.
  for (PageId id : ids) {
    auto res = pool.FetchPage(id);
    ASSERT_TRUE(res.ok());
    pool.UnpinPage(id, false);
  }
}

TEST_F(BufferPoolTest, RepinKeepsFrameAlive) {
  BufferPool pool(&file_, 4);
  Page* p = pool.NewPage();
  const PageId id = p->page_id();
  auto res = pool.FetchPage(id);  // second pin
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(p->pin_count(), 2);
  pool.UnpinPage(id, false);
  pool.UnpinPage(id, true);
  EXPECT_EQ(p->pin_count(), 0);
}

TEST_F(BufferPoolTest, PageGuardUnpinsOnScopeExit) {
  BufferPool pool(&file_, 4);
  PageId id;
  {
    PageGuard g = PageGuard::New(&pool);
    id = g.id();
    EXPECT_EQ(g.page()->pin_count(), 1);
  }
  auto res = pool.FetchPage(id);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value()->pin_count(), 1);  // guard released its pin
  pool.UnpinPage(id, false);
}

TEST_F(BufferPoolTest, PageGuardMovePreservesSinglePin) {
  BufferPool pool(&file_, 4);
  PageGuard a = PageGuard::New(&pool);
  const PageId id = a.id();
  PageGuard b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.page()->pin_count(), 1);
  b.Release();
  auto res = pool.FetchPage(id);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value()->pin_count(), 1);
  pool.UnpinPage(id, false);
}

TEST_F(BufferPoolTest, GuardDirtyPropagation) {
  BufferPool pool(&file_, 1);
  PageId id;
  {
    PageGuard g = PageGuard::New(&pool);
    id = g.id();
    g.data()[0] = 0x42;
    g.MarkDirty();
  }
  // Force eviction by creating another page.
  {
    PageGuard g2 = PageGuard::New(&pool);
  }
  uint8_t raw[kPageSize];
  ASSERT_TRUE(file_.Read(id, raw).ok());
  EXPECT_EQ(raw[0], 0x42);
}

}  // namespace
}  // namespace burtree
