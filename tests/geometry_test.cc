#include "common/geometry.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace burtree {
namespace {

TEST(PointTest, Distance) {
  Point a{0.0, 0.0};
  Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 5.0);
  EXPECT_DOUBLE_EQ(b.DistanceTo(a), 5.0);
  EXPECT_DOUBLE_EQ(a.DistanceTo(a), 0.0);
}

TEST(RectTest, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_FALSE(r.Contains(Point{0.5, 0.5}));
}

TEST(RectTest, FromPointIsDegenerate) {
  Rect r = Rect::FromPoint(Point{0.3, 0.7});
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  EXPECT_TRUE(r.Contains(Point{0.3, 0.7}));
  EXPECT_FALSE(r.Contains(Point{0.3, 0.70001}));
}

TEST(RectTest, AreaMarginCenter) {
  Rect r(0.0, 0.0, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 5.0);
  EXPECT_DOUBLE_EQ(r.Center().x, 1.0);
  EXPECT_DOUBLE_EQ(r.Center().y, 1.5);
}

TEST(RectTest, ContainsPointOnBoundary) {
  Rect r(0.0, 0.0, 1.0, 1.0);
  EXPECT_TRUE(r.Contains(Point{0.0, 0.0}));
  EXPECT_TRUE(r.Contains(Point{1.0, 1.0}));
  EXPECT_TRUE(r.Contains(Point{0.0, 1.0}));
  EXPECT_FALSE(r.Contains(Point{1.0000001, 0.5}));
}

TEST(RectTest, ContainsRect) {
  Rect outer(0.0, 0.0, 1.0, 1.0);
  EXPECT_TRUE(outer.Contains(Rect(0.2, 0.2, 0.8, 0.8)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect(0.2, 0.2, 1.2, 0.8)));
  EXPECT_FALSE(outer.Contains(Rect::Empty()));
  EXPECT_FALSE(Rect::Empty().Contains(outer));
}

TEST(RectTest, Intersects) {
  Rect a(0.0, 0.0, 1.0, 1.0);
  EXPECT_TRUE(a.Intersects(Rect(0.5, 0.5, 2.0, 2.0)));
  EXPECT_TRUE(a.Intersects(Rect(1.0, 1.0, 2.0, 2.0)));  // touch corners
  EXPECT_FALSE(a.Intersects(Rect(1.1, 1.1, 2.0, 2.0)));
  EXPECT_FALSE(a.Intersects(Rect::Empty()));
}

TEST(RectTest, UnionWith) {
  Rect a(0.0, 0.0, 1.0, 1.0);
  Rect b(2.0, -1.0, 3.0, 0.5);
  Rect u = a.UnionWith(b);
  EXPECT_EQ(u, Rect(0.0, -1.0, 3.0, 1.0));
  EXPECT_EQ(a.UnionWith(Rect::Empty()), a);
  EXPECT_EQ(Rect::Empty().UnionWith(a), a);
}

TEST(RectTest, IntersectionWith) {
  Rect a(0.0, 0.0, 1.0, 1.0);
  Rect b(0.5, 0.5, 2.0, 2.0);
  EXPECT_EQ(a.IntersectionWith(b), Rect(0.5, 0.5, 1.0, 1.0));
  EXPECT_TRUE(a.IntersectionWith(Rect(2.0, 2.0, 3.0, 3.0)).IsEmpty());
}

TEST(RectTest, Enlargement) {
  Rect a(0.0, 0.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect(0.2, 0.2, 0.4, 0.4)), 0.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect(0.0, 0.0, 2.0, 1.0)), 1.0);
}

TEST(RectTest, ExpandToInclude) {
  Rect r = Rect::Empty();
  r.ExpandToInclude(Point{0.5, 0.5});
  EXPECT_EQ(r, Rect(0.5, 0.5, 0.5, 0.5));
  r.ExpandToInclude(Point{0.2, 0.9});
  EXPECT_EQ(r, Rect(0.2, 0.5, 0.5, 0.9));
}

TEST(RectTest, MinDistanceTo) {
  Rect r(0.0, 0.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.MinDistanceTo(Point{0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(r.MinDistanceTo(Point{2.0, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(r.MinDistanceTo(Point{2.0, 2.0}), std::sqrt(2.0));
}

TEST(InflateRectTest, GrowsAllSides) {
  Rect r(0.4, 0.4, 0.6, 0.6);
  Rect i = InflateRect(r, 0.1);
  EXPECT_DOUBLE_EQ(i.min_x, 0.3);
  EXPECT_DOUBLE_EQ(i.min_y, 0.3);
  EXPECT_DOUBLE_EQ(i.max_x, 0.7);
  EXPECT_DOUBLE_EQ(i.max_y, 0.7);
}

// ---- iExtendMBR (Algorithm 4) ----

TEST(ExtendMbrDirectionalTest, ExtendsOnlyTowardsMovement) {
  Rect leaf(0.4, 0.4, 0.6, 0.6);
  Rect parent(0.0, 0.0, 1.0, 1.0);
  // Move northeast by a small amount within epsilon.
  Rect e = ExtendMbrDirectional(leaf, Point{0.65, 0.63}, 0.1, parent);
  EXPECT_DOUBLE_EQ(e.min_x, 0.4);  // west side untouched
  EXPECT_DOUBLE_EQ(e.min_y, 0.4);  // south side untouched
  EXPECT_DOUBLE_EQ(e.max_x, 0.65);
  EXPECT_DOUBLE_EQ(e.max_y, 0.63);
  EXPECT_TRUE(e.Contains(Point{0.65, 0.63}));
}

TEST(ExtendMbrDirectionalTest, CappedByEpsilon) {
  Rect leaf(0.4, 0.4, 0.6, 0.6);
  Rect parent(0.0, 0.0, 1.0, 1.0);
  Rect e = ExtendMbrDirectional(leaf, Point{0.9, 0.5}, 0.05, parent);
  EXPECT_DOUBLE_EQ(e.max_x, 0.65);  // 0.6 + epsilon
  EXPECT_FALSE(e.Contains(Point{0.9, 0.5}));
}

TEST(ExtendMbrDirectionalTest, ClippedByParent) {
  Rect leaf(0.4, 0.4, 0.6, 0.6);
  Rect parent(0.0, 0.0, 0.62, 1.0);
  Rect e = ExtendMbrDirectional(leaf, Point{0.8, 0.5}, 0.5, parent);
  EXPECT_DOUBLE_EQ(e.max_x, 0.62);  // parent boundary wins
}

TEST(ExtendMbrDirectionalTest, WestSouthMovement) {
  Rect leaf(0.4, 0.4, 0.6, 0.6);
  Rect parent(0.0, 0.0, 1.0, 1.0);
  Rect e = ExtendMbrDirectional(leaf, Point{0.35, 0.33}, 0.1, parent);
  EXPECT_DOUBLE_EQ(e.min_x, 0.35);
  EXPECT_DOUBLE_EQ(e.min_y, 0.33);
  EXPECT_DOUBLE_EQ(e.max_x, 0.6);
  EXPECT_DOUBLE_EQ(e.max_y, 0.6);
}

TEST(ExtendMbrDirectionalTest, NoMovementNeededIsIdentity) {
  Rect leaf(0.4, 0.4, 0.6, 0.6);
  Rect parent(0.0, 0.0, 1.0, 1.0);
  Rect e = ExtendMbrDirectional(leaf, Point{0.5, 0.5}, 0.1, parent);
  EXPECT_EQ(e, leaf);
}

// Property sweep: the extended rect always stays inside the parent and
// never shrinks, for random configurations.
class ExtendMbrPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ExtendMbrPropertyTest, InvariantsHold) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const double lx = rng.NextDouble(0.1, 0.7);
    const double ly = rng.NextDouble(0.1, 0.7);
    Rect leaf(lx, ly, lx + rng.NextDouble(0.0, 0.2),
              ly + rng.NextDouble(0.0, 0.2));
    Rect parent(leaf.min_x - rng.NextDouble(0.0, 0.1),
                leaf.min_y - rng.NextDouble(0.0, 0.1),
                leaf.max_x + rng.NextDouble(0.0, 0.1),
                leaf.max_y + rng.NextDouble(0.0, 0.1));
    Point target{rng.NextDouble(), rng.NextDouble()};
    const double eps = rng.NextDouble(0.0, 0.05);
    Rect e = ExtendMbrDirectional(leaf, target, eps, parent);
    EXPECT_TRUE(parent.Contains(e))
        << "parent=" << parent.ToString() << " e=" << e.ToString();
    EXPECT_TRUE(e.Contains(leaf))
        << "leaf=" << leaf.ToString() << " e=" << e.ToString();
    // Growth per side never exceeds epsilon (unless reaching the target
    // exactly, which is below epsilon by construction of the min()).
    EXPECT_LE(leaf.min_x - e.min_x, eps + 1e-12);
    EXPECT_LE(e.max_x - leaf.max_x, eps + 1e-12);
    EXPECT_LE(leaf.min_y - e.min_y, eps + 1e-12);
    EXPECT_LE(e.max_y - leaf.max_y, eps + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtendMbrPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace burtree
