#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "oid_index/hash_index.h"
#include "oid_index/memory_index.h"
#include "rtree/rtree.h"
#include "storage/page_file.h"

namespace burtree {
namespace {

// ---- MemoryOidIndex ----

TEST(MemoryOidIndexTest, BasicMapping) {
  MemoryOidIndex idx;
  idx.OnLeafEntryAdded(1, 100);
  idx.OnLeafEntryAdded(2, 200);
  EXPECT_EQ(idx.Lookup(1).value(), 100u);
  EXPECT_EQ(idx.Lookup(2).value(), 200u);
  EXPECT_FALSE(idx.Lookup(3).ok());
  EXPECT_EQ(idx.size(), 2u);
}

TEST(MemoryOidIndexTest, RemoveIsLeafGuarded) {
  MemoryOidIndex idx;
  idx.OnLeafEntryAdded(1, 100);
  idx.OnLeafEntryRemoved(1, 999);  // wrong leaf: mapping survives
  EXPECT_EQ(idx.Lookup(1).value(), 100u);
  idx.OnLeafEntryRemoved(1, 100);
  EXPECT_FALSE(idx.Lookup(1).ok());
}

TEST(MemoryOidIndexTest, SplitEventOrderIsSafe) {
  MemoryOidIndex idx;
  idx.OnLeafEntryAdded(1, 100);
  // Split rewiring can emit Add(new) before Remove(old) or vice versa.
  idx.OnLeafEntryRemoved(1, 100);
  idx.OnLeafEntryAdded(1, 101);
  EXPECT_EQ(idx.Lookup(1).value(), 101u);
  idx.OnLeafEntryAdded(1, 102);
  idx.OnLeafEntryRemoved(1, 101);  // stale removal after re-add
  EXPECT_EQ(idx.Lookup(1).value(), 102u);
}

// ---- HashIndex (paged linear hashing) ----

TEST(HashIndexTest, InsertLookupRemove) {
  HashIndex idx;
  idx.OnLeafEntryAdded(42, 7);
  EXPECT_EQ(idx.Lookup(42).value(), 7u);
  idx.OnLeafEntryAdded(42, 9);  // upsert
  EXPECT_EQ(idx.Lookup(42).value(), 9u);
  EXPECT_EQ(idx.size(), 1u);
  idx.OnLeafEntryRemoved(42, 9);
  EXPECT_FALSE(idx.Lookup(42).ok());
  EXPECT_EQ(idx.size(), 0u);
}

TEST(HashIndexTest, LookupChargesIo) {
  HashIndex idx;  // pass-through buffer by default
  idx.OnLeafEntryAdded(1, 10);
  const uint64_t reads = idx.io_stats().reads();
  EXPECT_EQ(idx.Lookup(1).value(), 10u);
  EXPECT_GE(idx.io_stats().reads(), reads + 1);  // the "1 I/O" term
}

TEST(HashIndexTest, GrowsThroughSplits) {
  HashIndexOptions opts;
  opts.initial_buckets = 4;
  HashIndex idx(opts);
  const uint32_t before = idx.bucket_count();
  for (ObjectId i = 0; i < 20000; ++i) {
    idx.OnLeafEntryAdded(i, static_cast<PageId>(i % 997));
  }
  EXPECT_GT(idx.bucket_count(), before);
  EXPECT_EQ(idx.size(), 20000u);
  // Every mapping must survive all the bucket splits.
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const ObjectId oid = rng.NextBelow(20000);
    ASSERT_TRUE(idx.Lookup(oid).ok());
    EXPECT_EQ(idx.Lookup(oid).value(), static_cast<PageId>(oid % 997));
  }
}

TEST(HashIndexTest, RandomizedAgainstStdMap) {
  HashIndexOptions opts;
  opts.initial_buckets = 2;
  HashIndex idx(opts);
  std::unordered_map<ObjectId, PageId> oracle;
  Rng rng(77);
  for (int step = 0; step < 30000; ++step) {
    const ObjectId oid = rng.NextBelow(3000);
    const double dice = rng.NextDouble();
    if (dice < 0.6) {
      const PageId leaf = static_cast<PageId>(rng.NextBelow(100000));
      idx.OnLeafEntryAdded(oid, leaf);
      oracle[oid] = leaf;
    } else if (dice < 0.85) {
      auto it = oracle.find(oid);
      if (it != oracle.end()) {
        idx.OnLeafEntryRemoved(oid, it->second);
        oracle.erase(it);
      } else {
        idx.OnLeafEntryRemoved(oid, 1);  // no-op removal
      }
    } else {
      auto it = oracle.find(oid);
      auto got = idx.Lookup(oid);
      if (it == oracle.end()) {
        EXPECT_FALSE(got.ok());
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got.value(), it->second);
      }
    }
  }
  EXPECT_EQ(idx.size(), oracle.size());
}

TEST(HashIndexTest, RemoveGuardedByLeaf) {
  HashIndex idx;
  idx.OnLeafEntryAdded(5, 50);
  idx.OnLeafEntryRemoved(5, 51);  // different leaf: keep
  EXPECT_EQ(idx.Lookup(5).value(), 50u);
}

TEST(HashIndexTest, OverflowChains) {
  // Tiny pages force overflow pages quickly.
  HashIndexOptions opts;
  opts.page_size = 64;  // capacity (64-8)/12 = 4 entries per bucket page
  opts.initial_buckets = 2;
  opts.max_load_factor = 100.0;  // never split: stress the chains
  HashIndex idx(opts);
  for (ObjectId i = 0; i < 300; ++i) {
    idx.OnLeafEntryAdded(i, static_cast<PageId>(i * 3));
  }
  EXPECT_EQ(idx.bucket_count(), 2u);
  EXPECT_GT(idx.page_count(), 2u);  // overflow pages exist
  for (ObjectId i = 0; i < 300; ++i) {
    ASSERT_TRUE(idx.Lookup(i).ok());
    EXPECT_EQ(idx.Lookup(i).value(), static_cast<PageId>(i * 3));
  }
  for (ObjectId i = 0; i < 300; i += 2) {
    idx.OnLeafEntryRemoved(i, static_cast<PageId>(i * 3));
  }
  for (ObjectId i = 0; i < 300; ++i) {
    EXPECT_EQ(idx.Lookup(i).ok(), i % 2 == 1);
  }
}

// ---- Integration: HashIndex wired to a live tree via the observer ----

class OidIndexTreeIntegrationTest
    : public ::testing::TestWithParam<bool /* use hash index */> {};

TEST_P(OidIndexTreeIntegrationTest, TracksEntriesThroughSplits) {
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, 1024);
  RTree tree(&pool, opts);

  std::unique_ptr<OidIndex> idx;
  if (GetParam()) {
    idx = std::make_unique<HashIndex>();
  } else {
    idx = std::make_unique<MemoryOidIndex>();
  }
  tree.set_observer(idx.get());

  Rng rng(5);
  std::vector<Point> pts;
  for (ObjectId i = 0; i < 3000; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    pts.push_back(p);
    ASSERT_TRUE(tree.Insert(i, Rect::FromPoint(p)).ok());
  }
  EXPECT_EQ(idx->size(), 3000u);

  // Every mapped leaf must actually contain the oid.
  for (ObjectId i = 0; i < 3000; i += 37) {
    auto leaf = idx->Lookup(i);
    ASSERT_TRUE(leaf.ok());
    PageGuard g = PageGuard::Fetch(&pool, leaf.value());
    NodeView v(g.data(), opts.page_size, opts.parent_pointers);
    EXPECT_GE(v.FindOidSlot(i), 0) << "oid " << i;
  }

  // Deletions (with condense + reinsertion) keep the mapping exact.
  for (ObjectId i = 0; i < 3000; i += 2) {
    ASSERT_TRUE(tree.Delete(i, Rect::FromPoint(pts[i])).ok());
  }
  EXPECT_EQ(idx->size(), 1500u);
  for (ObjectId i = 1; i < 3000; i += 152) {  // odd oids survived
    auto leaf = idx->Lookup(i);
    ASSERT_TRUE(leaf.ok()) << "oid " << i;
    PageGuard g = PageGuard::Fetch(&pool, leaf.value());
    NodeView v(g.data(), opts.page_size, opts.parent_pointers);
    EXPECT_GE(v.FindOidSlot(i), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Impl, OidIndexTreeIntegrationTest,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "HashIndex" : "MemoryIndex";
                         });

// ---------------------------------------------------------------------------
// Sharded-mutex HashIndex: the single global mutex is gone; chain
// operations lock a directory shared latch plus one stripe of a bucket
// mutex array, so probes of different buckets run in parallel — and
// bucket splits (exclusive directory latch) interleave with them.
// ---------------------------------------------------------------------------

TEST(HashIndexStripingTest, SixteenThreadMixedInsertLookupErase) {
  HashIndexOptions opts;
  opts.initial_buckets = 4;  // force many concurrent bucket splits
  opts.lock_stripes = 64;
  HashIndex idx(opts);
  EXPECT_EQ(idx.lock_stripe_count(), 64u);

  constexpr int kThreads = 16;
  constexpr uint64_t kPerThread = 3000;
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(140 + t);
      const uint64_t base = static_cast<uint64_t>(t) * 1000000;
      // Phase pattern per key: insert, remap, randomly lookup own keys
      // and foreign keys, erase every third key.
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const ObjectId oid = base + i;
        idx.OnLeafEntryAdded(oid, static_cast<PageId>(i % 997));
        if (i % 2 == 0) {
          idx.OnLeafEntryAdded(oid, static_cast<PageId>(i % 997 + 1));
        }
        if (i > 0 && rng.NextBool(0.5)) {
          const ObjectId probe = base + rng.NextBelow(i);
          (void)idx.Lookup(probe);  // may or may not still be mapped
        }
        if (rng.NextBool(0.3)) {
          // Foreign-range probe: pure reader against other stripes.
          const ObjectId other =
              (static_cast<uint64_t>((t + 1) % kThreads)) * 1000000 +
              rng.NextBelow(kPerThread);
          (void)idx.Lookup(other);
        }
        if (i % 3 == 0) {
          const PageId mapped =
              static_cast<PageId>(i % 997 + (i % 2 == 0 ? 1 : 0));
          idx.OnLeafEntryRemoved(oid, mapped);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(ok.load());

  // Exact surviving population: every oid except the i % 3 == 0 erasures,
  // each mapped to its last written leaf.
  uint64_t expected = 0;
  for (uint64_t i = 0; i < kPerThread; ++i) expected += i % 3 != 0 ? 1 : 0;
  EXPECT_EQ(idx.size(), expected * kThreads);
  for (int t = 0; t < kThreads; ++t) {
    const uint64_t base = static_cast<uint64_t>(t) * 1000000;
    for (uint64_t i = 0; i < kPerThread; i += 7) {
      auto leaf = idx.Lookup(base + i);
      if (i % 3 == 0) {
        EXPECT_FALSE(leaf.ok()) << "oid " << base + i;
      } else {
        ASSERT_TRUE(leaf.ok()) << "oid " << base + i;
        EXPECT_EQ(leaf.value(),
                  static_cast<PageId>(i % 997 + (i % 2 == 0 ? 1 : 0)));
      }
    }
  }
  // The load drove the table through many splits while threads probed.
  EXPECT_GT(idx.bucket_count(), 64u);
}

TEST(HashIndexStripingTest, SplitsRaceConcurrentReaders) {
  // Writers grow the table (continuous splits) while readers hammer
  // already-inserted keys: every lookup must see its mapping despite the
  // address space moving under the split pointer.
  HashIndexOptions opts;
  opts.initial_buckets = 4;
  HashIndex idx(opts);
  constexpr uint64_t kPreload = 2000;
  for (ObjectId i = 0; i < kPreload; ++i) {
    idx.OnLeafEntryAdded(i, static_cast<PageId>(i % 113));
  }
  std::atomic<bool> stop{false};
  std::atomic<bool> ok{true};
  std::vector<std::thread> readers;
  for (int t = 0; t < 6; ++t) {
    readers.emplace_back([&, t]() {
      Rng rng(9100 + t);
      while (!stop) {
        const ObjectId oid = rng.NextBelow(kPreload);
        auto leaf = idx.Lookup(oid);
        if (!leaf.ok() || leaf.value() != static_cast<PageId>(oid % 113)) {
          ok = false;
          return;
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t]() {
      const uint64_t base = 1000000 + static_cast<uint64_t>(t) * 1000000;
      for (uint64_t i = 0; i < 8000; ++i) {
        idx.OnLeafEntryAdded(base + i, static_cast<PageId>(i % 251));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop = true;
  for (auto& th : readers) th.join();
  ASSERT_TRUE(ok.load());
  EXPECT_EQ(idx.size(), kPreload + 4 * 8000);
}

}  // namespace
}  // namespace burtree
