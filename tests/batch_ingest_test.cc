// Group execution must be invisible to readers: applying an update
// sequence through UpdateBatch/InsertBatch has to leave the exact same
// index as applying it per-op — same window-query answers, same
// oid->leaf mapping, no object lost or duplicated — across every
// strategy x latch-mode x read-mode combination. Plus the counter proof
// behind the batching claim: the same update volume takes measurably
// fewer DGL acquisitions when batched.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "cc/concurrent_index.h"
#include "concurrency_test_util.h"
#include "harness/experiment.h"

namespace burtree {
namespace {

struct BatchWorld {
  BatchWorld(StrategyKind kind, LatchMode latch_mode, ReadMode read_mode,
             uint64_t objects, uint32_t grid_bits = 6) {
    cfg.strategy = kind;
    cfg.workload.num_objects = objects;
    cfg.workload.seed = 47;
    workload = std::make_unique<WorkloadGenerator>(cfg.workload);
    fx = MakeFixture(cfg);
    BURTREE_CHECK(BuildIndex(cfg, *workload, &fx).ok());
    ConcurrencyOptions copts;
    copts.io_latency_us = 0;
    copts.latch_mode = latch_mode;
    copts.read_mode = read_mode;
    copts.grid_bits = grid_bits;
    index = std::make_unique<ConcurrentIndex>(fx.system.get(),
                                              fx.strategy.get(),
                                              fx.executor.get(), copts);
  }
  ExperimentConfig cfg;
  std::unique_ptr<WorkloadGenerator> workload;
  StrategyFixture fx;
  std::unique_ptr<ConcurrentIndex> index;
};

/// One deterministic move sequence, shared by both worlds. Every 7th op
/// re-moves the previous op's oid so batches carry same-oid duplicates
/// (exercising the deferred per-oid ordering path in UpdateBatch).
struct Move {
  ObjectId oid;
  Point from, to;
};

std::vector<Move> MakeMoves(const WorkloadGenerator& workload,
                            uint64_t objects, size_t count) {
  std::vector<Point> pos(workload.initial_positions());
  std::vector<Move> moves;
  Rng rng(991);
  for (size_t i = 0; i < count; ++i) {
    const ObjectId oid = (i % 7 == 6 && !moves.empty())
                             ? moves.back().oid
                             : rng.NextBelow(objects);
    const Point from = pos[oid];
    const Point to{rng.NextDouble(), rng.NextDouble()};
    moves.push_back({oid, from, to});
    pos[oid] = to;
  }
  return moves;
}

std::multiset<ObjectId> WindowOids(RTree& tree, const Rect& w) {
  std::multiset<ObjectId> oids;
  EXPECT_TRUE(
      tree.Query(w, [&](ObjectId oid, const Rect&) { oids.insert(oid); })
          .ok());
  return oids;
}

class BatchEquivalenceTest
    : public ::testing::TestWithParam<
          std::tuple<StrategyKind, LatchMode, ReadMode>> {};

TEST_P(BatchEquivalenceTest, BatchMatchesPerOp) {
  const auto [kind, latch_mode, read_mode] = GetParam();
  constexpr uint64_t kObjects = 2000;
  constexpr size_t kMoves = 1200;
  constexpr size_t kBatch = 48;

  BatchWorld per_op(kind, latch_mode, read_mode, kObjects);
  BatchWorld batched(kind, latch_mode, read_mode, kObjects);
  const auto moves = MakeMoves(*per_op.workload, kObjects, kMoves);

  for (const Move& m : moves) {
    ASSERT_TRUE(per_op.index->Update(m.oid, m.from, m.to).ok());
  }
  for (size_t i = 0; i < moves.size(); i += kBatch) {
    std::vector<BatchUpdateOp> ops;
    for (size_t j = i; j < std::min(moves.size(), i + kBatch); ++j) {
      ops.push_back({moves[j].oid, moves[j].from, moves[j].to, Status()});
    }
    ASSERT_TRUE(batched.index->UpdateBatch(ops).ok());
    for (const auto& op : ops) ASSERT_TRUE(op.status.ok());
  }

  // Both trees valid, nothing lost or duplicated.
  EXPECT_TRUE(per_op.fx.system->tree().Validate().ok());
  EXPECT_TRUE(batched.fx.system->tree().Validate().ok());
  EXPECT_EQ(testutil::FullSpaceCount(*per_op.fx.system), kObjects);
  EXPECT_EQ(testutil::FullSpaceCount(*batched.fx.system), kObjects);

  // Same answers to the same windows (including same duplicates, hence
  // multisets): group execution reordered physical application but the
  // per-oid final positions must agree.
  Rng rng(1717);
  for (int q = 0; q < 40; ++q) {
    const Rect w = WorkloadGenerator::QueryWindowFrom(rng, 0.2);
    EXPECT_EQ(WindowOids(per_op.fx.system->tree(), w),
              WindowOids(batched.fx.system->tree(), w))
        << "window " << q << " diverged";
  }

  // Bottom-up strategies: every oid's hash-index entry still points at
  // the leaf that physically holds it.
  if (kind != StrategyKind::kTopDown) {
    testutil::ExpectOidIndexConsistent(*per_op.fx.system, kObjects);
    testutil::ExpectOidIndexConsistent(*batched.fx.system, kObjects);
  }

  // Counters: every op went through group execution exactly once.
  const LatchModeStats stats = batched.index->latch_stats();
  EXPECT_EQ(stats.batched_updates, kMoves);
  EXPECT_GT(stats.batch_pages, 0u);
  EXPECT_EQ(per_op.index->latch_stats().batched_updates, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, BatchEquivalenceTest,
    ::testing::Values(
        std::make_tuple(StrategyKind::kTopDown, LatchMode::kGlobal,
                        ReadMode::kLatched),
        std::make_tuple(StrategyKind::kLocalizedBottomUp,
                        LatchMode::kGlobal, ReadMode::kLatched),
        std::make_tuple(StrategyKind::kGeneralizedBottomUp,
                        LatchMode::kGlobal, ReadMode::kLatched),
        std::make_tuple(StrategyKind::kGeneralizedBottomUp,
                        LatchMode::kSubtree, ReadMode::kLatched),
        std::make_tuple(StrategyKind::kLocalizedBottomUp,
                        LatchMode::kSubtree, ReadMode::kLatched),
        std::make_tuple(StrategyKind::kGeneralizedBottomUp,
                        LatchMode::kCoupled, ReadMode::kLatched),
        std::make_tuple(StrategyKind::kGeneralizedBottomUp,
                        LatchMode::kCoupled, ReadMode::kOptimistic)));

TEST(BatchInsertTest, InsertBatchMatchesPerOpInserts) {
  constexpr uint64_t kObjects = 1500;
  constexpr uint64_t kNew = 400;
  for (LatchMode mode :
       {LatchMode::kGlobal, LatchMode::kSubtree, LatchMode::kCoupled}) {
    BatchWorld per_op(StrategyKind::kGeneralizedBottomUp, mode,
                      ReadMode::kLatched, kObjects);
    BatchWorld batched(StrategyKind::kGeneralizedBottomUp, mode,
                       ReadMode::kLatched, kObjects);
    Rng rng(3344);
    std::vector<BatchInsertOp> ops;
    for (uint64_t i = 0; i < kNew; ++i) {
      const Point p{rng.NextDouble(), rng.NextDouble()};
      ASSERT_TRUE(per_op.index->Insert(kObjects + i, p).ok());
      ops.push_back({kObjects + i, p, Status()});
    }
    ASSERT_TRUE(batched.index->InsertBatch(ops).ok());
    for (const auto& op : ops) ASSERT_TRUE(op.status.ok());

    EXPECT_TRUE(per_op.fx.system->tree().Validate().ok());
    EXPECT_TRUE(batched.fx.system->tree().Validate().ok());
    EXPECT_EQ(testutil::FullSpaceCount(*per_op.fx.system),
              kObjects + kNew);
    EXPECT_EQ(testutil::FullSpaceCount(*batched.fx.system),
              kObjects + kNew);
    testutil::ExpectOidIndexConsistent(*batched.fx.system,
                                       kObjects + kNew);
  }
}

TEST(BatchCounterTest, BatchingAmortizesDglAcquisitions) {
  constexpr uint64_t kObjects = 2000;
  constexpr size_t kMoves = 1000;
  constexpr size_t kBatch = 50;

  // A coarse 8x8 granule grid makes the amortization visible in the
  // counters: uniform random moves across a 64x64 grid rarely share
  // cells, so the per-batch cell union would be nearly as large as the
  // per-op total and only the root IX would amortize. At 8x8 a 50-op
  // batch covers at most 65 locks where per-op pays ~150.
  constexpr uint32_t kGridBits = 3;
  BatchWorld per_op(StrategyKind::kGeneralizedBottomUp,
                    LatchMode::kSubtree, ReadMode::kLatched, kObjects,
                    kGridBits);
  BatchWorld batched(StrategyKind::kGeneralizedBottomUp,
                     LatchMode::kSubtree, ReadMode::kLatched, kObjects,
                     kGridBits);
  const auto moves = MakeMoves(*per_op.workload, kObjects, kMoves);

  for (const Move& m : moves) {
    ASSERT_TRUE(per_op.index->Update(m.oid, m.from, m.to).ok());
  }
  for (size_t i = 0; i < moves.size(); i += kBatch) {
    std::vector<BatchUpdateOp> ops;
    for (size_t j = i; j < std::min(moves.size(), i + kBatch); ++j) {
      ops.push_back({moves[j].oid, moves[j].from, moves[j].to, Status()});
    }
    ASSERT_TRUE(batched.index->UpdateBatch(ops).ok());
  }

  // Per-op: >= 3 lock-manager acquisitions per update (root IX + the
  // from/to cells). Batched: one root IX + the cell union per ~50-op
  // batch. The exact counts depend on granule geometry, so assert the
  // headline ratio rather than absolutes: batching must at least halve
  // the acquisition volume.
  const uint64_t perop_acq = per_op.index->lock_manager().stats().acquisitions;
  const uint64_t batch_acq = batched.index->lock_manager().stats().acquisitions;
  EXPECT_GT(perop_acq, 0u);
  EXPECT_GT(batch_acq, 0u);
  EXPECT_LT(batch_acq * 2, perop_acq)
      << "batched " << batch_acq << " vs per-op " << perop_acq;

  const LatchModeStats stats = batched.index->latch_stats();
  EXPECT_EQ(stats.batched_updates, kMoves);
  EXPECT_GT(stats.batch_pages, 0u);
}

TEST(BatchApiTest, DglFailureStampsEveryOpAndMutatesNothing) {
  // An empty batch is a no-op success.
  BatchWorld w(StrategyKind::kGeneralizedBottomUp, LatchMode::kSubtree,
               ReadMode::kLatched, 500);
  std::vector<BatchUpdateOp> empty;
  EXPECT_TRUE(w.index->UpdateBatch(empty).ok());
  std::vector<BatchInsertOp> empty_ins;
  EXPECT_TRUE(w.index->InsertBatch(empty_ins).ok());
  EXPECT_EQ(w.index->latch_stats().batched_updates, 0u);
}

}  // namespace
}  // namespace burtree
