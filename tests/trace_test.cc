#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "harness/experiment.h"

namespace burtree {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TraceTest, RoundTripsOps) {
  TraceWriter w;
  w.Add(TraceUpdate{42, Point{0.1, 0.2}, Point{0.3, 0.4}});
  w.Add(TraceQuery{Rect(0.0, 0.0, 0.5, 0.5)});
  w.Add(TraceUpdate{7, Point{0.9, 0.9}, Point{0.8, 0.8}});
  const std::string path = TempPath("trace_roundtrip.bin");
  ASSERT_TRUE(w.WriteTo(path).ok());

  auto ops = TraceReader::ReadFrom(path);
  ASSERT_TRUE(ops.ok());
  ASSERT_EQ(ops.value().size(), 3u);
  const auto& u0 = std::get<TraceUpdate>(ops.value()[0]);
  EXPECT_EQ(u0.oid, 42u);
  EXPECT_EQ(u0.from, (Point{0.1, 0.2}));
  EXPECT_EQ(u0.to, (Point{0.3, 0.4}));
  const auto& q = std::get<TraceQuery>(ops.value()[1]);
  EXPECT_EQ(q.window, Rect(0.0, 0.0, 0.5, 0.5));
  const auto& u2 = std::get<TraceUpdate>(ops.value()[2]);
  EXPECT_EQ(u2.oid, 7u);
}

TEST(TraceTest, EmptyTrace) {
  TraceWriter w;
  const std::string path = TempPath("trace_empty.bin");
  ASSERT_TRUE(w.WriteTo(path).ok());
  auto ops = TraceReader::ReadFrom(path);
  ASSERT_TRUE(ops.ok());
  EXPECT_TRUE(ops.value().empty());
}

TEST(TraceTest, MissingFileIsNotFound) {
  auto ops = TraceReader::ReadFrom(TempPath("nonexistent_trace.bin"));
  EXPECT_EQ(ops.status().code(), StatusCode::kNotFound);
}

TEST(TraceTest, CorruptMagicRejected) {
  const std::string path = TempPath("trace_bad_magic.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("JUNKJUNKJUNKJUNK", f);
  std::fclose(f);
  auto ops = TraceReader::ReadFrom(path);
  EXPECT_EQ(ops.status().code(), StatusCode::kCorruption);
}

TEST(TraceTest, TruncatedTraceRejected) {
  TraceWriter w;
  for (int i = 0; i < 10; ++i) {
    w.Add(TraceUpdate{static_cast<ObjectId>(i), Point{0.1, 0.1},
                      Point{0.2, 0.2}});
  }
  const std::string path = TempPath("trace_trunc.bin");
  ASSERT_TRUE(w.WriteTo(path).ok());
  // Chop the last 8 bytes off.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 8);
  auto ops = TraceReader::ReadFrom(path);
  EXPECT_EQ(ops.status().code(), StatusCode::kCorruption);
}

TEST(TraceTest, RecordedWorkloadReplaysIdentically) {
  // Record a workload, replay it against GBU, and check the result equals
  // running the generator live with the same seed.
  WorkloadOptions wopts;
  wopts.num_objects = 2000;
  wopts.seed = 77;

  // Live run.
  ExperimentConfig cfg;
  cfg.strategy = StrategyKind::kGeneralizedBottomUp;
  cfg.workload = wopts;
  WorkloadGenerator live(wopts);
  auto live_fx = MakeFixture(cfg);
  ASSERT_TRUE(BuildIndex(cfg, live, &live_fx).ok());
  for (int i = 0; i < 3000; ++i) {
    const auto op = live.NextUpdate();
    ASSERT_TRUE(live_fx.strategy->Update(op.oid, op.from, op.to).ok());
  }

  // Recorded run.
  WorkloadGenerator rec(wopts);
  auto replay_fx = MakeFixture(cfg);
  ASSERT_TRUE(BuildIndex(cfg, rec, &replay_fx).ok());
  TraceWriter w;
  for (const TraceOp& op : RecordWorkload(&rec, 3000, 50)) {
    if (const auto* u = std::get_if<TraceUpdate>(&op)) w.Add(*u);
    if (const auto* q = std::get_if<TraceQuery>(&op)) w.Add(*q);
  }
  const std::string path = TempPath("trace_replay.bin");
  ASSERT_TRUE(w.WriteTo(path).ok());
  auto ops = TraceReader::ReadFrom(path);
  ASSERT_TRUE(ops.ok());
  size_t updates = 0, queries = 0;
  for (const TraceOp& op : ops.value()) {
    if (const auto* u = std::get_if<TraceUpdate>(&op)) {
      ASSERT_TRUE(replay_fx.strategy->Update(u->oid, u->from, u->to).ok());
      ++updates;
    } else {
      const auto& q = std::get<TraceQuery>(op);
      ASSERT_TRUE(replay_fx.executor->Query(q.window).ok());
      ++queries;
    }
  }
  EXPECT_EQ(updates, 3000u);
  EXPECT_EQ(queries, 50u);

  // Both trees contain the same objects at the same final positions.
  std::vector<std::pair<ObjectId, double>> a, b;
  ASSERT_TRUE(live_fx.system->tree()
                  .Query(Rect(0, 0, 1, 1),
                         [&](ObjectId oid, const Rect& r) {
                           a.emplace_back(oid, r.min_x + r.min_y);
                         })
                  .ok());
  ASSERT_TRUE(replay_fx.system->tree()
                  .Query(Rect(0, 0, 1, 1),
                         [&](ObjectId oid, const Rect& r) {
                           b.emplace_back(oid, r.min_x + r.min_y);
                         })
                  .ok());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace burtree
