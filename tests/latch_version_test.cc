// Unit pack for the per-stripe version stamps behind optimistic
// version-validated reads (cc/latch_table) and for the restart-budget
// fallback of RTree::QueryOptimistic:
//   * every exclusive acquire and release bumps the stamp (odd while
//     X-held), shared holds and WaitForStripe never do;
//   * a torn read is detected: any writer pass over the stripe between
//     snapshot and validation fails ValidateVersion;
//   * TryBeginSnapshot fails while a writer holds the stripe;
//   * the optimistic descent returns LatchContention once its restart
//     budget starves (always-failing snapshot or always-stale validate);
//   * the stamp is 64-bit: a 16-bit counter would wrap back to its old
//     value after 2^16 writer passes (classic ABA) — ours must not.
#include <gtest/gtest.h>

#include <vector>

#include "cc/latch_table.h"
#include "concurrency_test_util.h"

namespace burtree {
namespace {

TEST(LatchVersionTest, ExclusiveAcquireAndReleaseEachBumpOnce) {
  LatchTable table(64);
  const PageId page = 7;
  const uint64_t v0 = table.ReadVersion(page);
  EXPECT_TRUE(table.ValidateVersion(page, v0));
  {
    PageLatchSet set(&table);
    set.AcquireExclusive(page);
    // Odd while held, and already distinct from the snapshot stamp.
    EXPECT_EQ(table.ReadVersion(page), v0 + 1);
    EXPECT_EQ(table.ReadVersion(page) % 2, 1u);
    EXPECT_FALSE(table.ValidateVersion(page, v0));
  }
  EXPECT_EQ(table.ReadVersion(page), v0 + 2);
  EXPECT_FALSE(table.ValidateVersion(page, v0));
  EXPECT_TRUE(table.ValidateVersion(page, v0 + 2));
}

TEST(LatchVersionTest, TryExtendAndSetAcquireBumpToo) {
  LatchTable table(64);
  const PageId a = 3, b = 4;
  const uint64_t va = table.ReadVersion(a);
  const uint64_t vb = table.ReadVersion(b);
  {
    PageLatchSet set(&table);
    set.AcquireExclusive(std::vector<PageId>{a});
    ASSERT_TRUE(set.TryExtendExclusive(b));
    EXPECT_EQ(table.ReadVersion(a), va + 1);
    EXPECT_EQ(table.ReadVersion(b), vb + 1);
  }
  EXPECT_EQ(table.ReadVersion(a), va + 2);
  EXPECT_EQ(table.ReadVersion(b), vb + 2);
}

TEST(LatchVersionTest, SharedHoldsAndStripeWaitsNeverBump) {
  LatchTable table(64);
  const PageId page = 11;
  const uint64_t v0 = table.ReadVersion(page);
  {
    PageLatchSet set(&table);
    set.AcquireShared(page);
    EXPECT_EQ(table.ReadVersion(page), v0);  // readers are invisible
  }
  table.WaitForStripe(page);  // momentary X with no mutation under it
  EXPECT_EQ(table.ReadVersion(page), v0);
  EXPECT_TRUE(table.ValidateVersion(page, v0));
}

TEST(LatchVersionTest, SnapshotFailsWhileWriterHolds) {
  LatchTable table(64);
  const PageId page = 5;
  PageLatchSet writer(&table);
  writer.AcquireExclusive(page);
  uint64_t v = 0;
  EXPECT_FALSE(table.TryBeginSnapshot(page, &v));
  writer.ReleaseAll();
  ASSERT_TRUE(table.TryBeginSnapshot(page, &v));
  EXPECT_EQ(v % 2, 0u);  // never a mid-write stamp
  table.EndSnapshot(page);
  EXPECT_TRUE(table.ValidateVersion(page, v));
}

TEST(LatchVersionTest, WriterPassBetweenSnapshotAndValidateIsDetected) {
  LatchTable table(64);
  const PageId page = 19;
  uint64_t v = 0;
  ASSERT_TRUE(table.TryBeginSnapshot(page, &v));
  table.EndSnapshot(page);
  {
    PageLatchSet writer(&table);
    writer.AcquireExclusive(page);  // the "torn" write
  }
  EXPECT_FALSE(table.ValidateVersion(page, v));
}

TEST(LatchVersionTest, SixtyFourBitStampDefeats16BitAbaWrap) {
  LatchTable table(1);  // one stripe: every pass hits it
  const PageId page = 0;
  const uint64_t v0 = table.ReadVersion(page);
  // 2^16 writer passes = 2^17 bumps: a 16-bit stamp would have wrapped
  // to exactly v0 and a snapshot taken before the storm would validate
  // against a completely rewritten page.
  for (int i = 0; i < (1 << 16); ++i) {
    PageLatchSet writer(&table);
    writer.AcquireExclusive(page);
  }
  EXPECT_EQ(table.ReadVersion(page), v0 + (1u << 17));
  EXPECT_FALSE(table.ValidateVersion(page, v0));
  EXPECT_FALSE(table.ValidateVersion(page, v0 + (1u << 16)));
}

/// Hooks whose snapshots never begin: every attempt burns restart
/// budget, so the descent must starve into LatchContention.
class NeverBeginsHooks final : public VersionLatchHooks {
 public:
  bool TryBeginSnapshot(PageId, uint64_t*) override { return false; }
  void EndSnapshot(PageId) override {}
  bool Validate(PageId, uint64_t) override { return true; }
};

/// Hooks whose validations always fail: snapshots copy fine (through a
/// real latch table) but every internal node re-validation reports a
/// stale read, so the descent must starve too.
class AlwaysStaleHooks final : public VersionLatchHooks {
 public:
  explicit AlwaysStaleHooks(LatchTable* table) : table_(table) {}
  bool TryBeginSnapshot(PageId page, uint64_t* v) override {
    return table_->TryBeginSnapshot(page, v);
  }
  void EndSnapshot(PageId page) override { table_->EndSnapshot(page); }
  bool Validate(PageId, uint64_t) override { return false; }

 private:
  LatchTable* table_;
};

/// Well-behaved hooks over a real table: the full-space optimistic scan
/// must see every object.
class RealTableHooks final : public VersionLatchHooks {
 public:
  explicit RealTableHooks(LatchTable* table) : table_(table) {}
  bool TryBeginSnapshot(PageId page, uint64_t* v) override {
    return table_->TryBeginSnapshot(page, v);
  }
  void EndSnapshot(PageId page) override { table_->EndSnapshot(page); }
  bool Validate(PageId page, uint64_t v) override {
    return table_->ValidateVersion(page, v);
  }

 private:
  LatchTable* table_;
};

class OptimisticFallbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.strategy = StrategyKind::kGeneralizedBottomUp;
    cfg_.page_size = 512;  // several levels at 800 objects
    cfg_.workload.num_objects = 800;
    cfg_.workload.seed = 42;
    WorkloadGenerator workload(cfg_.workload);
    fx_ = MakeFixture(cfg_);
    ASSERT_TRUE(BuildIndex(cfg_, workload, &fx_).ok());
    ASSERT_GE(fx_.system->tree().root_level(), 1);
  }

  ExperimentConfig cfg_;
  StrategyFixture fx_;
};

TEST_F(OptimisticFallbackTest, StarvedSnapshotsExhaustBudgetToContention) {
  NeverBeginsHooks hooks;
  const Status st = fx_.system->tree().QueryOptimistic(
      Rect(0, 0, 1, 1), [](ObjectId, const Rect&) {}, &hooks,
      /*restart_budget=*/8);
  EXPECT_EQ(st.code(), StatusCode::kLatchContention);
}

TEST_F(OptimisticFallbackTest, PerpetuallyStaleValidationsStarveToo) {
  LatchTable table(256);
  AlwaysStaleHooks hooks(&table);
  const Status st = fx_.system->tree().QueryOptimistic(
      Rect(0, 0, 1, 1), [](ObjectId, const Rect&) {}, &hooks,
      /*restart_budget=*/8);
  EXPECT_EQ(st.code(), StatusCode::kLatchContention);
}

TEST_F(OptimisticFallbackTest, QuiescentOptimisticScanSeesEverything) {
  LatchTable table(256);
  RealTableHooks hooks(&table);
  uint64_t count = 0;
  const Status st = fx_.system->tree().QueryOptimistic(
      Rect(0, 0, 1, 1), [&](ObjectId, const Rect&) { ++count; }, &hooks);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(count, cfg_.workload.num_objects);
}

}  // namespace
}  // namespace burtree
