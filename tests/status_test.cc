#include "common/status.h"

#include <gtest/gtest.h>

namespace burtree {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("object 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "object 42");
  EXPECT_EQ(s.ToString(), "NotFound: object 42");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Aborted().code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  auto fn = [](bool fail) -> Status {
    BURTREE_RETURN_IF_ERROR(fail ? Status::Aborted("inner")
                                 : Status::OK());
    return Status::InvalidArgument("fallthrough");
  };
  EXPECT_EQ(fn(true).code(), StatusCode::kAborted);
  EXPECT_EQ(fn(false).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace burtree
