// Property tests: the R-tree is compared against a brute-force oracle
// under long random operation sequences, across option combinations.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "rtree/rtree.h"
#include "storage/page_file.h"

namespace burtree {
namespace {

struct Oracle {
  std::map<ObjectId, Point> objects;

  std::set<ObjectId> Query(const Rect& w) const {
    std::set<ObjectId> out;
    for (const auto& [oid, p] : objects) {
      if (w.Contains(p)) out.insert(oid);
    }
    return out;
  }
};

struct PropertyParam {
  SplitAlgorithm split;
  bool parent_pointers;
  size_t page_size;
  uint64_t seed;
};

class RTreeOracleTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(RTreeOracleTest, RandomOpsMatchOracle) {
  const PropertyParam param = GetParam();
  TreeOptions opts;
  opts.split = param.split;
  opts.parent_pointers = param.parent_pointers;
  opts.page_size = param.page_size;

  PageFile file(opts.page_size);
  BufferPool pool(&file, 64);
  RTree tree(&pool, opts);
  Oracle oracle;
  Rng rng(param.seed);

  ObjectId next_oid = 0;
  for (int step = 0; step < 4000; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.55 || oracle.objects.empty()) {
      // Insert a fresh object.
      const Point p{rng.NextDouble(), rng.NextDouble()};
      const ObjectId oid = next_oid++;
      ASSERT_TRUE(tree.Insert(oid, Rect::FromPoint(p)).ok());
      oracle.objects[oid] = p;
    } else if (dice < 0.85) {
      // Delete a random existing object.
      auto it = oracle.objects.begin();
      std::advance(it, rng.NextBelow(oracle.objects.size()));
      ASSERT_TRUE(
          tree.Delete(it->first, Rect::FromPoint(it->second)).ok());
      oracle.objects.erase(it);
    } else {
      // Update = delete + insert (the TD primitive).
      auto it = oracle.objects.begin();
      std::advance(it, rng.NextBelow(oracle.objects.size()));
      const Point p{rng.NextDouble(), rng.NextDouble()};
      ASSERT_TRUE(
          tree.Delete(it->first, Rect::FromPoint(it->second)).ok());
      ASSERT_TRUE(tree.Insert(it->first, Rect::FromPoint(p)).ok());
      it->second = p;
    }

    if (step % 500 == 499) {
      const Status vs = tree.Validate();
      ASSERT_TRUE(vs.ok()) << "step " << step << ": " << vs.ToString();
      // Compare several random window queries against the oracle.
      for (int q = 0; q < 10; ++q) {
        const double w = rng.NextDouble() * 0.3;
        const double h = rng.NextDouble() * 0.3;
        const double x = rng.NextDouble() * (1.0 - w);
        const double y = rng.NextDouble() * (1.0 - h);
        const Rect window(x, y, x + w, y + h);
        std::set<ObjectId> got;
        ASSERT_TRUE(tree.Query(window, [&](ObjectId oid, const Rect&) {
          got.insert(oid);
        }).ok());
        EXPECT_EQ(got, oracle.Query(window)) << "step " << step;
      }
    }
  }
  // Final full-space check.
  std::set<ObjectId> all;
  ASSERT_TRUE(tree.Query(Rect(0, 0, 1, 1), [&](ObjectId oid, const Rect&) {
    all.insert(oid);
  }).ok());
  EXPECT_EQ(all.size(), oracle.objects.size());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RTreeOracleTest,
    ::testing::Values(
        PropertyParam{SplitAlgorithm::kQuadratic, false, 1024, 101},
        PropertyParam{SplitAlgorithm::kQuadratic, true, 1024, 102},
        PropertyParam{SplitAlgorithm::kLinear, false, 1024, 103},
        PropertyParam{SplitAlgorithm::kRStar, false, 1024, 104},
        PropertyParam{SplitAlgorithm::kQuadratic, false, 256, 105},
        PropertyParam{SplitAlgorithm::kQuadratic, true, 512, 106}));

// Tiny-buffer sweep: correctness must be independent of buffer capacity
// (only I/O counts change).
class RTreeBufferSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeBufferSweepTest, ResultsIndependentOfBufferSize) {
  TreeOptions opts;
  PageFile file(opts.page_size);
  BufferPool pool(&file, GetParam());
  RTree tree(&pool, opts);
  Rng rng(55);
  Oracle oracle;
  for (ObjectId i = 0; i < 800; ++i) {
    const Point p{rng.NextDouble(), rng.NextDouble()};
    ASSERT_TRUE(tree.Insert(i, Rect::FromPoint(p)).ok());
    oracle.objects[i] = p;
  }
  for (int q = 0; q < 30; ++q) {
    const double w = rng.NextDouble() * 0.2;
    const double h = rng.NextDouble() * 0.2;
    const double x = rng.NextDouble() * (1.0 - w);
    const double y = rng.NextDouble() * (1.0 - h);
    const Rect window(x, y, x + w, y + h);
    std::set<ObjectId> got;
    ASSERT_TRUE(tree.Query(window, [&](ObjectId oid, const Rect&) {
      got.insert(oid);
    }).ok());
    EXPECT_EQ(got, oracle.Query(window));
  }
  ASSERT_TRUE(tree.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Buffers, RTreeBufferSweepTest,
                         ::testing::Values(0, 1, 2, 16, 4096));

}  // namespace
}  // namespace burtree
