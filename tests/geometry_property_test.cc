// Randomized algebraic properties of the Rect operations: the R-tree's
// correctness arguments lean on these identities.
#include <gtest/gtest.h>

#include "common/geometry.h"
#include "common/random.h"

namespace burtree {
namespace {

Rect RandomRect(Rng& rng) {
  const double x0 = rng.NextDouble(-0.5, 1.0);
  const double y0 = rng.NextDouble(-0.5, 1.0);
  return Rect(x0, y0, x0 + rng.NextDouble(0.0, 0.5),
              y0 + rng.NextDouble(0.0, 0.5));
}

class RectPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RectPropertyTest, UnionIsCommutativeAndIdempotent) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const Rect a = RandomRect(rng), b = RandomRect(rng);
    EXPECT_EQ(a.UnionWith(b), b.UnionWith(a));
    EXPECT_EQ(a.UnionWith(a), a);
  }
}

TEST_P(RectPropertyTest, UnionContainsBothOperands) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const Rect a = RandomRect(rng), b = RandomRect(rng);
    const Rect u = a.UnionWith(b);
    EXPECT_TRUE(u.Contains(a));
    EXPECT_TRUE(u.Contains(b));
    EXPECT_GE(u.Area(), std::max(a.Area(), b.Area()) - 1e-15);
  }
}

TEST_P(RectPropertyTest, UnionIsAssociative) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const Rect a = RandomRect(rng), b = RandomRect(rng),
               c = RandomRect(rng);
    EXPECT_EQ(a.UnionWith(b).UnionWith(c), a.UnionWith(b.UnionWith(c)));
  }
}

TEST_P(RectPropertyTest, IntersectionSymmetricAndContained) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const Rect a = RandomRect(rng), b = RandomRect(rng);
    const Rect i1 = a.IntersectionWith(b);
    const Rect i2 = b.IntersectionWith(a);
    EXPECT_EQ(i1, i2);
    if (!i1.IsEmpty()) {
      EXPECT_TRUE(a.Contains(i1));
      EXPECT_TRUE(b.Contains(i1));
      EXPECT_TRUE(a.Intersects(b));
    } else {
      EXPECT_FALSE(a.Intersects(b));
    }
  }
}

TEST_P(RectPropertyTest, ContainmentImpliesIntersection) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const Rect a = RandomRect(rng), b = RandomRect(rng);
    if (a.Contains(b)) {
      EXPECT_TRUE(a.Intersects(b));
      EXPECT_EQ(a.UnionWith(b), a);
      EXPECT_DOUBLE_EQ(a.Enlargement(b), 0.0);
    }
  }
}

TEST_P(RectPropertyTest, EnlargementNonNegativeAndExact) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const Rect a = RandomRect(rng), b = RandomRect(rng);
    const double e = a.Enlargement(b);
    EXPECT_GE(e, -1e-12);
    EXPECT_NEAR(a.UnionWith(b).Area(), a.Area() + e, 1e-12);
  }
}

TEST_P(RectPropertyTest, ContainsIsTransitive) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const Rect c = RandomRect(rng);
    // Derive b inside c, a inside b.
    const Rect b(c.min_x + c.Width() * 0.1, c.min_y + c.Height() * 0.1,
                 c.max_x - c.Width() * 0.1, c.max_y - c.Height() * 0.1);
    const Rect a(b.min_x + b.Width() * 0.2, b.min_y + b.Height() * 0.2,
                 b.max_x - b.Width() * 0.2, b.max_y - b.Height() * 0.2);
    EXPECT_TRUE(c.Contains(b));
    EXPECT_TRUE(b.Contains(a));
    EXPECT_TRUE(c.Contains(a));
  }
}

TEST_P(RectPropertyTest, MinDistanceZeroIffContains) {
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    const Rect a = RandomRect(rng);
    const Point p{rng.NextDouble(-0.5, 1.5), rng.NextDouble(-0.5, 1.5)};
    const double d = a.MinDistanceTo(p);
    EXPECT_EQ(d == 0.0, a.Contains(p));
    EXPECT_GE(d, 0.0);
  }
}

TEST_P(RectPropertyTest, DirectionalExtensionIsMinimal) {
  // Among all rects covering the target, iExtendMBR's output is never
  // larger than needed along any axis it touched.
  Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    Rect leaf = RandomRect(rng);
    const Rect parent = InflateRect(leaf, rng.NextDouble(0.0, 0.3));
    const Point target{rng.NextDouble(), rng.NextDouble()};
    const double eps = rng.NextDouble(0.0, 0.2);
    const Rect e = ExtendMbrDirectional(leaf, target, eps, parent);
    if (e.Contains(target)) {
      // Shrinking any extended side by epsilon' > 0 must lose the target
      // or return to the original side.
      if (e.max_x > leaf.max_x) {
        EXPECT_GE(target.x, leaf.max_x);
      }
      if (e.min_x < leaf.min_x) {
        EXPECT_LE(target.x, leaf.min_x);
      }
      if (e.max_y > leaf.max_y) {
        EXPECT_GE(target.y, leaf.max_y);
      }
      if (e.min_y < leaf.min_y) {
        EXPECT_LE(target.y, leaf.min_y);
      }
      // And the extension reaches exactly to the target where it grew
      // less than epsilon and the parent allowed it.
      if (e.max_x > leaf.max_x && e.max_x < leaf.max_x + eps &&
          e.max_x < parent.max_x) {
        EXPECT_DOUBLE_EQ(e.max_x, target.x);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RectPropertyTest,
                         ::testing::Values(1001, 1002, 1003));

}  // namespace
}  // namespace burtree
