// Backend interchangeability: the full strategy pipeline (build ->
// updates -> flush) run over the in-memory PageFile and over the real
// FilePageStore must produce the same tree — same query answers, same
// oid->leaf mapping, same I/O counts, and byte-identical page images on
// the final "disk".
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <tuple>
#include <vector>

#include "harness/experiment.h"

namespace burtree {
namespace {

ExperimentConfig SmallConfig(StrategyKind kind, StorageBackend backend) {
  ExperimentConfig cfg;
  cfg.strategy = kind;
  cfg.workload.num_objects = 1200;
  cfg.num_updates = 1500;
  cfg.num_queries = 0;  // queries run through the fixture below instead
  cfg.buffer_fraction = 0.02;
  cfg.buffer_shards = 2;
  cfg.storage.backend = backend;
  cfg.storage.file_dir = ::testing::TempDir();
  return cfg;
}

struct PipelineOutput {
  StrategyFixture fx;
  std::map<ObjectId, std::tuple<double, double, double, double>> contents;
};

// Build + update phases of the experiment pipeline, then a whole-space
// query snapshot of the tree contents, with the fixture kept alive so
// the caller can inspect the stores underneath.
void RunPipeline(const ExperimentConfig& cfg, PipelineOutput* out) {
  WorkloadGenerator workload(cfg.workload);
  out->fx = MakeFixture(cfg);
  ASSERT_TRUE(BuildIndex(cfg, workload, &out->fx).ok());
  for (uint64_t i = 0; i < cfg.num_updates; ++i) {
    const auto op = workload.NextUpdate();
    auto r = out->fx.strategy->Update(op.oid, op.from, op.to);
    ASSERT_TRUE(r.status().ok()) << r.status().ToString();
  }
  ASSERT_TRUE(out->fx.system->FlushAll().ok());
  ASSERT_TRUE(out->fx.system->tree().Validate().ok());
  ASSERT_TRUE(out->fx.system->tree()
                  .Query(Rect(0, 0, 1, 1),
                         [&](ObjectId oid, const Rect& r) {
                           out->contents[oid] = {r.min_x, r.min_y, r.max_x,
                                                 r.max_y};
                         })
                  .ok());
}

void ExpectSameDiskImages(PageStore& a, PageStore& b) {
  ASSERT_EQ(a.allocated_slots(), b.allocated_slots());
  ASSERT_EQ(a.live_pages(), b.live_pages());
  std::vector<uint8_t> pa(a.page_size()), pb(b.page_size());
  ASSERT_EQ(pa.size(), pb.size());
  for (PageId id = 0; id < a.allocated_slots(); ++id) {
    const bool la = a.Read(id, pa.data()).ok();
    const bool lb = b.Read(id, pb.data()).ok();
    ASSERT_EQ(la, lb) << "liveness diverges at page " << id;
    if (!la) continue;
    ASSERT_EQ(std::memcmp(pa.data(), pb.data(), pa.size()), 0)
        << "page " << id << " differs between backends";
  }
}

class StorageEquivalenceTest
    : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(StorageEquivalenceTest, MemAndFileBackendsProduceTheSameTree) {
  PipelineOutput mem, file;
  ASSERT_NO_FATAL_FAILURE(
      RunPipeline(SmallConfig(GetParam(), StorageBackend::kMem), &mem));
  ASSERT_NO_FATAL_FAILURE(
      RunPipeline(SmallConfig(GetParam(), StorageBackend::kFile), &file));

  // Same logical tree: identical object set and rectangles.
  ASSERT_EQ(mem.contents.size(), file.contents.size());
  EXPECT_EQ(mem.contents, file.contents);
  EXPECT_EQ(mem.fx.system->tree().height(),
            file.fx.system->tree().height());

  // Same physical behavior: every disk access the mem run made, the file
  // run made too (the paper's metric must not depend on the backend).
  EXPECT_EQ(mem.fx.system->file().io_stats().reads(),
            file.fx.system->file().io_stats().reads());
  EXPECT_EQ(mem.fx.system->file().io_stats().writes(),
            file.fx.system->file().io_stats().writes());

  // Same oid -> leaf mapping where a secondary index exists.
  if (mem.fx.system->oid_index() != nullptr) {
    for (const auto& [oid, rect] : mem.contents) {
      (void)rect;
      auto la = mem.fx.system->oid_index()->Lookup(oid);
      auto lb = file.fx.system->oid_index()->Lookup(oid);
      ASSERT_TRUE(la.ok());
      ASSERT_TRUE(lb.ok());
      ASSERT_EQ(la.value(), lb.value()) << "oid " << oid;
    }
  }

  // Byte-identical final disk images, page for page.
  ExpectSameDiskImages(mem.fx.system->file(), file.fx.system->file());
}

ExperimentConfig EngineConfig(StrategyKind kind, IoEngineKind engine) {
  ExperimentConfig cfg = SmallConfig(kind, StorageBackend::kFile);
  cfg.storage.io_engine = engine;
  cfg.storage.io_queue_depth = 8;
  return cfg;
}

// The async engines change only WHEN pages move (overlapped misses,
// submit-and-reap write-backs, linked WAL appends) — never what lands.
// The same pipeline run under sync, pool, and uring must leave
// byte-identical disk images and the same logical tree.
TEST_P(StorageEquivalenceTest, AsyncEnginesMatchSyncByteForByte) {
  PipelineOutput sync_run, pool_run, uring_run;
  ASSERT_NO_FATAL_FAILURE(RunPipeline(
      EngineConfig(GetParam(), IoEngineKind::kSync), &sync_run));
  ASSERT_NO_FATAL_FAILURE(RunPipeline(
      EngineConfig(GetParam(), IoEngineKind::kPool), &pool_run));
  ASSERT_NO_FATAL_FAILURE(RunPipeline(
      EngineConfig(GetParam(), IoEngineKind::kUring), &uring_run));

  // Same logical tree. (I/O counts are NOT compared here: the async
  // engines add advisory prefetch reads the sync path never issues.)
  EXPECT_EQ(sync_run.contents, pool_run.contents);
  EXPECT_EQ(sync_run.contents, uring_run.contents);
  EXPECT_EQ(sync_run.fx.system->tree().height(),
            pool_run.fx.system->tree().height());
  EXPECT_EQ(sync_run.fx.system->tree().height(),
            uring_run.fx.system->tree().height());

  // Byte-identical final disk images, page for page.
  ExpectSameDiskImages(sync_run.fx.system->file(),
                       pool_run.fx.system->file());
  ExpectSameDiskImages(sync_run.fx.system->file(),
                       uring_run.fx.system->file());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StorageEquivalenceTest,
                         ::testing::Values(
                             StrategyKind::kTopDown,
                             StrategyKind::kLocalizedBottomUp,
                             StrategyKind::kGeneralizedBottomUp),
                         [](const auto& info) {
                           return std::string(StrategyName(info.param));
                         });

}  // namespace
}  // namespace burtree
