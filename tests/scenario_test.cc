// Scenario-suite subsystem: spec parsing (good specs, malformed specs
// that must fail loudly), directory loading, and RunScenario end to end
// — mixed update/insert/delete/query/kNN clients with the conservation
// ledger, the declared-check machinery, and the ingest-pool routing.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace burtree {
namespace {

TEST(ScenarioParseTest, ParsesEveryKey) {
  const std::string text = R"(
# comment line
name: full_spec       # trailing comment
strategy: GBU
latch_mode: coupled
read_mode: optimistic
backend: file
wal: true
wal_group_commit_us: 150
fsync: false
io_engine: pool
io_queue_depth: 8
objects: 12345
distribution: gaussian
max_move: 0.05
seed: 99
buffer: 0.25
shards: 4
page_size: 2048
forced_reinsert: true
bulk_build: true
ingest: workers=2,batch=16
threads: 6
ops_per_thread: 77
update_pct: 40
insert_pct: 10
delete_pct: 10
knn_pct: 15
knn_k: 7
query_dim: 0.02
skew: flashcrowd
hot_fraction: 0.03
hot_prob: 0.95
flash_interval: 123
io_latency_us: 42
io_latency_in_op: true
expect_validate: false
expect_conservation: false
expect_zero_escalations: true
expect_min_tps: 100.5
)";
  auto spec = ParseScenario(text, "fallback");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const ScenarioSpec& s = spec.value();
  EXPECT_EQ(s.name, "full_spec");
  EXPECT_EQ(s.base.strategy, StrategyKind::kGeneralizedBottomUp);
  EXPECT_EQ(s.base.latch_mode, LatchMode::kCoupled);
  EXPECT_EQ(s.base.read_mode, ReadMode::kOptimistic);
  EXPECT_EQ(s.base.storage.backend, StorageBackend::kFile);
  EXPECT_TRUE(s.base.storage.wal.enabled);
  EXPECT_EQ(s.base.storage.wal.group_commit_us, 150u);
  EXPECT_EQ(s.base.storage.io_engine, IoEngineKind::kPool);
  EXPECT_EQ(s.base.storage.io_queue_depth, 8u);
  EXPECT_EQ(s.base.workload.num_objects, 12345u);
  EXPECT_EQ(s.base.workload.distribution, Distribution::kGaussian);
  EXPECT_DOUBLE_EQ(s.base.workload.max_move_distance, 0.05);
  EXPECT_EQ(s.base.workload.seed, 99u);
  EXPECT_DOUBLE_EQ(s.base.buffer_fraction, 0.25);
  EXPECT_EQ(s.base.buffer_shards, 4u);
  EXPECT_EQ(s.base.page_size, 2048u);
  EXPECT_TRUE(s.base.forced_reinsert);
  EXPECT_TRUE(s.base.bulk_build);
  EXPECT_EQ(s.base.ingest.workers, 2u);
  EXPECT_EQ(s.threads, 6u);
  EXPECT_EQ(s.ops_per_thread, 77u);
  EXPECT_DOUBLE_EQ(s.update_pct, 40.0);
  EXPECT_DOUBLE_EQ(s.knn_pct, 15.0);
  EXPECT_EQ(s.knn_k, 7u);
  EXPECT_DOUBLE_EQ(s.query_max_dim, 0.02);
  EXPECT_EQ(s.skew.kind, SkewKind::kFlashCrowd);
  EXPECT_DOUBLE_EQ(s.skew.hot_fraction, 0.03);
  EXPECT_EQ(s.skew.flash_interval, 123u);
  EXPECT_EQ(s.io_latency_us, 42u);
  EXPECT_TRUE(s.io_latency_in_op);
  EXPECT_FALSE(s.expect_validate);
  EXPECT_FALSE(s.expect_conservation);
  EXPECT_TRUE(s.expect_zero_escalations);
  EXPECT_DOUBLE_EQ(s.expect_min_tps, 100.5);
}

TEST(ScenarioParseTest, NameDefaultsFromFileStem) {
  auto spec = ParseScenario("threads: 2\nops_per_thread: 5\n", "my_file");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().name, "my_file");
}

TEST(ScenarioParseTest, UnknownKeyFailsLoudly) {
  auto spec = ParseScenario("updte_pct: 60\n", "typo");
  ASSERT_FALSE(spec.ok());
  EXPECT_NE(spec.status().message().find("unknown key"), std::string::npos)
      << spec.status().ToString();
  EXPECT_NE(spec.status().message().find("line 1"), std::string::npos);
}

TEST(ScenarioParseTest, RejectsMalformedSpecs) {
  // Not key:value.
  EXPECT_FALSE(ParseScenario("just some words\n", "x").ok());
  // Empty value.
  EXPECT_FALSE(ParseScenario("strategy:\n", "x").ok());
  // Bad enum values.
  EXPECT_FALSE(ParseScenario("strategy: BFS\n", "x").ok());
  EXPECT_FALSE(ParseScenario("latch_mode: hopeful\n", "x").ok());
  EXPECT_FALSE(ParseScenario("skew: volcano\n", "x").ok());
  EXPECT_FALSE(ParseScenario("wal: maybe\n", "x").ok());
  // Mix over 100%.
  EXPECT_FALSE(
      ParseScenario("update_pct: 80\ninsert_pct: 30\n", "x").ok());
  // No run bound.
  EXPECT_FALSE(ParseScenario("ops_per_thread: 0\n", "x").ok());
  // Zero clients / empty workload.
  EXPECT_FALSE(ParseScenario("threads: 0\n", "x").ok());
  EXPECT_FALSE(ParseScenario("objects: 0\n", "x").ok());
  // Bad engine name.
  EXPECT_FALSE(ParseScenario("io_engine: turbo\n", "x").ok());
}

TEST(ScenarioParseTest, RejectsNonStrictIntegers) {
  // Integer keys used bare strtoull, which silently accepted signs,
  // whitespace, hex, and trailing junk (and wrapped "-1" to 2^64-1).
  // Each must now fail with the offending key and line in the message.
  for (const char* line :
       {"threads: -1\n", "objects: +5\n", "seed: 0x2a\n",
        "page_size: 4k\n", "ops_per_thread: 1e3\n",
        "io_queue_depth: -8\n", "wal_group_commit_us: 150us\n",
        "flash_interval: 99999999999999999999\n"}) {
    auto spec = ParseScenario(line, "strict");
    ASSERT_FALSE(spec.ok()) << line;
    EXPECT_NE(spec.status().message().find("bad unsigned integer"),
              std::string::npos)
        << spec.status().ToString();
    EXPECT_NE(spec.status().message().find("line 1"), std::string::npos);
  }
}

TEST(ScenarioLoadTest, LoadsDirectorySortedAndSkipsOtherFiles) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("burtree-scn-" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  std::ofstream(dir / "20_b.scn") << "ops_per_thread: 5\n";
  std::ofstream(dir / "10_a.scn") << "ops_per_thread: 5\n";
  std::ofstream(dir / "README.md") << "not a scenario\n";
  auto specs = LoadScenarioDir(dir.string());
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs.value().size(), 2u);
  EXPECT_EQ(specs.value()[0].name, "10_a");
  EXPECT_EQ(specs.value()[1].name, "20_b");

  // A directory with no specs is an error, not an empty suite.
  const std::filesystem::path empty = dir / "empty";
  std::filesystem::create_directories(empty);
  EXPECT_FALSE(LoadScenarioDir(empty.string()).ok());
  // A malformed file poisons the whole load.
  std::ofstream(dir / "30_bad.scn") << "nonsense_key: 1\n";
  EXPECT_FALSE(LoadScenarioDir(dir.string()).ok());
  std::filesystem::remove_all(dir);
}

// ---- End-to-end runs (small: the suite's own CI sizing lives in
// bench/suite/*.scn; these pin RunScenario's semantics) ----

ScenarioSpec SmallSpec() {
  ScenarioSpec spec;
  spec.name = "unit";
  spec.base.workload.num_objects = 2000;
  spec.base.workload.seed = 7;
  spec.threads = 4;
  spec.ops_per_thread = 150;
  return spec;
}

TEST(RunScenarioTest, ChurnConservationAcrossLatchModes) {
  for (LatchMode mode :
       {LatchMode::kGlobal, LatchMode::kSubtree, LatchMode::kCoupled}) {
    ScenarioSpec spec = SmallSpec();
    spec.base.strategy = StrategyKind::kGeneralizedBottomUp;
    spec.base.latch_mode = mode;
    spec.update_pct = 30;
    spec.insert_pct = 25;
    spec.delete_pct = 25;
    spec.knn_pct = 10;
    auto run = RunScenario(spec);
    ASSERT_TRUE(run.ok()) << LatchModeName(mode) << ": "
                          << run.status().ToString();
    const ScenarioResult& r = run.value();
    EXPECT_TRUE(r.check_failures.empty())
        << LatchModeName(mode) << ": " << r.check_failures[0];
    EXPECT_EQ(r.final_objects, r.expected_objects) << LatchModeName(mode);
    EXPECT_GT(r.ops_insert, 0u);
    EXPECT_GT(r.ops_delete, 0u);
    EXPECT_GT(r.ops_knn, 0u);
    EXPECT_EQ(r.total_ops, spec.threads * spec.ops_per_thread);
  }
}

TEST(RunScenarioTest, OpCountsAreSeedDeterministic) {
  ScenarioSpec spec = SmallSpec();
  spec.update_pct = 40;
  spec.insert_pct = 15;
  spec.delete_pct = 15;
  spec.knn_pct = 10;
  spec.skew.kind = SkewKind::kHotspot;
  auto a = RunScenario(spec);
  auto b = RunScenario(spec);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().ops_update, b.value().ops_update);
  EXPECT_EQ(a.value().ops_insert, b.value().ops_insert);
  EXPECT_EQ(a.value().ops_delete, b.value().ops_delete);
  EXPECT_EQ(a.value().ops_query, b.value().ops_query);
  EXPECT_EQ(a.value().ops_knn, b.value().ops_knn);
  EXPECT_EQ(a.value().final_objects, b.value().final_objects);
}

TEST(RunScenarioTest, FailedChecksAreReportedNotFatal) {
  ScenarioSpec spec = SmallSpec();
  spec.ops_per_thread = 50;
  // Unreachable floor: the run itself succeeds, the check fails.
  spec.expect_min_tps = 1e12;
  auto run = RunScenario(spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_EQ(run.value().check_failures.size(), 1u);
  EXPECT_NE(run.value().check_failures[0].find("tps"), std::string::npos);
}

TEST(RunScenarioTest, IngestPoolRoutesWritesAndBalances) {
  ScenarioSpec spec = SmallSpec();
  spec.base.strategy = StrategyKind::kGeneralizedBottomUp;
  spec.base.latch_mode = LatchMode::kSubtree;
  spec.base.ingest.workers = 2;
  spec.base.ingest.max_batch = 16;
  spec.update_pct = 50;
  spec.insert_pct = 20;
  spec.delete_pct = 10;
  auto run = RunScenario(spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ScenarioResult& r = run.value();
  EXPECT_TRUE(r.check_failures.empty()) << r.check_failures[0];
  // Updates and inserts went through the pool; deletes stayed direct.
  EXPECT_GE(r.ingest_stats.submitted, r.ops_update + r.ops_insert);
  EXPECT_GT(r.ingest_stats.batches, 0u);
  EXPECT_EQ(r.final_objects, r.expected_objects);
}

TEST(RunScenarioTest, TimeBoundRunStopsAndIsNotOpsBound) {
  ScenarioSpec spec = SmallSpec();
  spec.duration_s = 0.2;
  spec.ops_per_thread = 0;  // duration-bound runs ignore the op cap
  auto run = RunScenario(spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run.value().ops_bound);
  EXPECT_GT(run.value().total_ops, 0u);
  EXPECT_GE(run.value().elapsed_s, 0.2);
  EXPECT_TRUE(run.value().check_failures.empty());
}

TEST(RunScenarioTest, WalBackedScenarioRunsDurably) {
  ScenarioSpec spec = SmallSpec();
  spec.base.storage.backend = StorageBackend::kFile;
  spec.base.storage.wal.enabled = true;
  spec.base.buffer_fraction = 0.1;
  spec.threads = 2;
  spec.ops_per_thread = 60;
  spec.update_pct = 50;
  spec.insert_pct = 20;
  spec.delete_pct = 10;
  auto run = RunScenario(spec);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run.value().check_failures.empty())
      << run.value().check_failures[0];
  // Every logical op was bracketed in a WAL scope.
  EXPECT_GT(run.value().wal_stats.records, 0u);
}

}  // namespace
}  // namespace burtree
